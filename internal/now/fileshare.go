package now

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// This file implements the paper's NoW mechanism literally (Section
// III.E): a shared network filesystem holds "the fault description files
// of the experiments, the simulation checkpoints and the output of each
// simulation", and each workstation repeatedly claims one remaining
// experiment and executes it locally from the checkpointed state.
//
// Share layout:
//
//	<share>/meta.json              workload name, scale, model, limits
//	<share>/checkpoint.gob         the post-fi_read_init_all state
//	<share>/experiments/<id>.fault fault description, Listing-1 format
//	<share>/claims/<id>.fault      claimed experiments (atomic rename)
//	<share>/results/<id>.json      one result per finished experiment
//
// Claiming is an os.Rename from experiments/ into claims/, which is
// atomic on POSIX filesystems (including NFS for same-directory renames
// as used by the original scripts).

// shareMeta is the campaign description stored on the share.
type shareMeta struct {
	Workload    string `json:"workload"`
	Scale       int    `json:"scale"`
	Model       string `json:"model"`
	MaxInsts    uint64 `json:"maxInsts"`
	WindowInsts uint64 `json:"windowInsts"`
	Experiments int    `json:"experiments"`
}

// ShareConfig parameterizes PrepareShare.
type ShareConfig struct {
	Workload    string
	Scale       workloads.Scale
	Model       sim.ModelKind
	MaxInsts    uint64
	Experiments []campaign.Experiment
}

// PrepareShare runs the golden simulation, captures the checkpoint and
// populates the share directory with one fault description file per
// experiment (steps 1–2 of the paper's procedure).
func PrepareShare(dir string, cfg ShareConfig) error {
	if cfg.Model == "" {
		cfg.Model = sim.ModelAtomic
	}
	if cfg.MaxInsts == 0 {
		cfg.MaxInsts = 2_000_000_000
	}
	w, err := workloads.ByName(cfg.Workload, cfg.Scale)
	if err != nil {
		return err
	}
	runnerCfg := sim.Config{Model: cfg.Model, EnableFI: true, MaxInsts: cfg.MaxInsts}
	runner, err := campaign.NewRunner(w, campaign.RunnerOptions{Cfg: &runnerCfg})
	if err != nil {
		return err
	}
	for _, sub := range []string{"experiments", "claims", "results"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return err
		}
	}
	if err := runner.Ckpt.SaveFile(filepath.Join(dir, "checkpoint.gob")); err != nil {
		return err
	}
	meta := shareMeta{
		Workload:    cfg.Workload,
		Scale:       int(cfg.Scale),
		Model:       string(cfg.Model),
		MaxInsts:    cfg.MaxInsts,
		WindowInsts: runner.WindowInsts,
		Experiments: len(cfg.Experiments),
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), mb, 0o644); err != nil {
		return err
	}
	for _, exp := range cfg.Experiments {
		var sb strings.Builder
		for _, f := range exp.Faults {
			sb.WriteString(f.String())
			sb.WriteByte('\n')
		}
		name := filepath.Join(dir, "experiments", fmt.Sprintf("%06d.fault", exp.ID))
		if err := os.WriteFile(name, []byte(sb.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ShareWindowInsts reads the golden fault-injection window size recorded
// on a prepared share (for generating experiments against it).
func ShareWindowInsts(dir string) (uint64, error) {
	meta, err := readMeta(dir)
	if err != nil {
		return 0, err
	}
	return meta.WindowInsts, nil
}

func readMeta(dir string) (shareMeta, error) {
	var meta shareMeta
	b, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return meta, err
	}
	if err := json.Unmarshal(b, &meta); err != nil {
		return meta, fmt.Errorf("now: bad share meta: %w", err)
	}
	return meta, nil
}

// FileWorker processes experiments from a share directory until none are
// left (steps 3–6 of the paper's procedure). It returns how many
// experiments it completed.
func FileWorker(dir string) (int, error) {
	meta, err := readMeta(dir)
	if err != nil {
		return 0, err
	}
	st, err := checkpoint.LoadFile(filepath.Join(dir, "checkpoint.gob"))
	if err != nil {
		return 0, err
	}
	w, err := workloads.ByName(meta.Workload, workloads.Scale(meta.Scale))
	if err != nil {
		return 0, err
	}
	cfg := sim.Config{Model: sim.ModelKind(meta.Model), EnableFI: true, MaxInsts: meta.MaxInsts}

	// Rebuild the golden reference from the local checkpoint copy.
	p, err := w.Build()
	if err != nil {
		return 0, err
	}
	s := sim.New(cfg)
	if err := s.Load(p); err != nil {
		return 0, err
	}
	s.Restore(st, nil)
	if r := s.Run(); r.Failed() {
		return 0, fmt.Errorf("now: fault-free continuation failed: %+v", r)
	}
	golden, err := workloads.Extract(w, s)
	if err != nil {
		return 0, err
	}
	runner, err := campaign.NewRestoredRunner(w, cfg, golden, meta.WindowInsts, st)
	if err != nil {
		return 0, err
	}

	done := 0
	for {
		name, ok, err := claimOne(dir)
		if err != nil {
			return done, err
		}
		if !ok {
			return done, nil
		}
		id, faults, err := loadExperiment(filepath.Join(dir, "claims", name))
		if err != nil {
			return done, err
		}
		res := runner.Run(campaign.Experiment{ID: id, Faults: faults})
		rb, err := json.Marshal(res)
		if err != nil {
			return done, err
		}
		out := filepath.Join(dir, "results", fmt.Sprintf("%06d.json", id))
		if err := os.WriteFile(out, rb, 0o644); err != nil {
			return done, err
		}
		done++
	}
}

// claimOne atomically moves one pending experiment into claims/.
// Concurrent workers race on the rename; the loser retries the next
// file.
func claimOne(dir string) (string, bool, error) {
	entries, err := os.ReadDir(filepath.Join(dir, "experiments"))
	if err != nil {
		return "", false, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".fault") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		src := filepath.Join(dir, "experiments", name)
		dst := filepath.Join(dir, "claims", name)
		if err := os.Rename(src, dst); err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // lost the race for this one
			}
			return "", false, err
		}
		return name, true, nil
	}
	return "", false, nil
}

// loadExperiment parses a claimed .fault file.
func loadExperiment(path string) (int, []core.Fault, error) {
	base := strings.TrimSuffix(filepath.Base(path), ".fault")
	id := 0
	if _, err := fmt.Sscanf(base, "%d", &id); err != nil {
		return 0, nil, fmt.Errorf("now: bad experiment file name %q", path)
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	faults, err := core.ParseFaults(f)
	if err != nil {
		return 0, nil, err
	}
	return id, faults, nil
}

// CollectResults waits until the share holds want results (or the
// timeout passes) and returns them ordered by experiment ID (step 5: the
// results are moved back to the share).
func CollectResults(dir string, want int, timeout time.Duration) ([]campaign.Result, error) {
	deadline := time.Now().Add(timeout)
	for {
		results, err := readResults(dir)
		if err != nil {
			return nil, err
		}
		if len(results) >= want {
			return results, nil
		}
		if time.Now().After(deadline) {
			return results, fmt.Errorf("now: collected %d of %d results before timeout", len(results), want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func readResults(dir string) ([]campaign.Result, error) {
	entries, err := os.ReadDir(filepath.Join(dir, "results"))
	if err != nil {
		return nil, err
	}
	var out []campaign.Result
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, "results", e.Name()))
		if err != nil {
			return nil, err
		}
		var r campaign.Result
		if err := json.Unmarshal(b, &r); err != nil {
			return nil, fmt.Errorf("now: bad result file %s: %w", e.Name(), err)
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// RequeueStaleClaims moves claimed-but-unfinished experiments back into
// the queue (recovery after a workstation death, the hazard the paper's
// checkpointing guards against on non-dedicated machines).
func RequeueStaleClaims(dir string) (int, error) {
	entries, err := os.ReadDir(filepath.Join(dir, "claims"))
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".fault") {
			continue
		}
		id := strings.TrimSuffix(e.Name(), ".fault")
		if _, err := os.Stat(filepath.Join(dir, "results", id+".json")); err == nil {
			continue // finished; leave the claim as a record
		}
		if err := os.Rename(filepath.Join(dir, "claims", e.Name()),
			filepath.Join(dir, "experiments", e.Name())); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
