package now

// ServeSource bridges the NoW worker protocol to an external scheduler:
// instead of a Master owning one campaign's queue, an ExpSource (the
// campaign service) assigns each arriving worker to a campaign and feeds
// it experiments. The wire protocol is unchanged — workers built for a
// Master work against a source-backed listener — so one worker fleet can
// serve a single-campaign master or a multi-tenant service
// interchangeably.

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// Welcome carries the campaign parameters a worker needs to build its
// local runner: the workload identity, the serialized checkpoint, the
// window size, and the simulator model. Campaign tags the session for
// the source's accounting (workers echo it back implicitly by staying on
// the session).
type Welcome struct {
	Campaign    string
	Workload    string
	Scale       int
	Checkpoint  []byte
	WindowInsts uint64
	Model       string
	MaxInsts    uint64
	// SpanTrace tells the worker the source records distributed spans:
	// each experiment arrives with a trace context, and the worker ships
	// its span records back on the result.
	SpanTrace bool
	// Flight tells the worker the source wants flight-recorder
	// post-mortems: the worker attaches a recorder and interesting
	// results arrive with Result.Postmortem populated.
	Flight bool
}

// Session is one worker's assignment to a campaign. Take and Complete
// are called from that worker's serving goroutine; Close fires exactly
// once when the connection ends (normally or by death) and must requeue
// whatever was taken but never completed — the exactly-once ledger lives
// in the source. Take's context is the source-side experiment span the
// worker's spans parent under (zero when the source does not trace);
// Complete receives whatever span records the worker shipped back.
type Session interface {
	Take() (campaign.Experiment, obs.SpanContext, bool)
	Complete(campaign.Result, []obs.SpanRecord)
	Close()
}

// ExpSource assigns arriving workers to campaigns. Open returns the
// welcome parameters and a session; ok=false tells the worker nothing
// needs running (it receives done immediately). Implementations must be
// safe for concurrent use by many connections.
type ExpSource interface {
	Open(workerName string) (Welcome, Session, bool)
}

// ServeSource accepts worker connections on ln and serves each against
// src until the listener closes; it then waits for every in-flight
// connection to drain before returning. The caller owns ln and closes
// it to stop.
func ServeSource(ln net.Listener, src ExpSource) {
	var wg sync.WaitGroup
	var id int
	for {
		raw, err := ln.Accept()
		if err != nil {
			break
		}
		id++
		name := fmt.Sprintf("conn%d-%s", id, raw.RemoteAddr())
		wg.Add(1)
		go func() {
			defer wg.Done()
			serveSourceConn(name, newConn(raw), src)
		}()
	}
	wg.Wait()
}

// serveSourceConn runs the master side of one worker connection against
// the source's session.
func serveSourceConn(name string, c *conn, src ExpSource) {
	defer c.close()

	hello, err := c.recv()
	if err != nil || hello.Type != MsgHello {
		return
	}
	worker := hello.WorkerName
	if worker == "" {
		worker = name
	}
	wel, sess, ok := src.Open(worker)
	if !ok {
		// Nothing to run: greet with an empty welcome so the worker's
		// handshake completes, then close its fetch loop immediately.
		_ = c.send(Message{Type: MsgDone})
		return
	}
	defer sess.Close()
	if err := c.send(Message{
		Type:        MsgWelcome,
		Campaign:    wel.Campaign,
		Workload:    wel.Workload,
		Scale:       wel.Scale,
		Checkpoint:  wel.Checkpoint,
		WindowInsts: wel.WindowInsts,
		Model:       wel.Model,
		MaxInsts:    wel.MaxInsts,
		SpanTrace:   wel.SpanTrace,
		Flight:      wel.Flight,
	}); err != nil {
		return
	}
	for {
		msg, err := c.recv()
		if err != nil {
			return
		}
		switch msg.Type {
		case MsgFetch:
			exp, ctx, ok := sess.Take()
			if !ok {
				_ = c.send(Message{Type: MsgDone})
				return
			}
			out := Message{Type: MsgExperiment, Experiment: &exp}
			if ctx.Valid() {
				out.Trace = &ctx
			}
			if err := c.send(out); err != nil {
				return
			}
		case MsgResult:
			if msg.Result != nil {
				sess.Complete(*msg.Result, msg.Spans)
			}
		case MsgHeartbeat:
			// Liveness is the source's concern only through session
			// lifetime; heartbeats just keep the connection warm.
		default:
			_ = c.send(Message{Type: MsgError, Error: "unexpected " + msg.Type})
			return
		}
	}
}
