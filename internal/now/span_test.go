package now

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/workloads"
)

// startSpanCampaign boots a traced master for a PI campaign.
func startSpanCampaign(t *testing.T, n int) (*Master, []campaign.Experiment, *obs.SpanRecorder) {
	t.Helper()
	probe, err := NewMaster("127.0.0.1:0", MasterConfig{
		Workload: "pi", Scale: workloads.ScaleTest, Quiet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	exps := campaign.GenerateUniform(n, campaign.GenConfig{WindowInsts: probe.WindowInsts(), Seed: 21})
	probe.Close()
	rec := obs.NewSpanRecorder()
	m, err := NewMaster("127.0.0.1:0", MasterConfig{
		Workload: "pi", Scale: workloads.ScaleTest, Experiments: exps, Quiet: true,
		Spans: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, exps, rec
}

// TestNoWSpanPropagation: worker-side spans must stitch under the
// master's experiment span into one valid tree per experiment, with the
// clock-skew annotation on the root.
func TestNoWSpanPropagation(t *testing.T) {
	m, exps, rec := startSpanCampaign(t, 6)
	go func() {
		w := NewWorker(WorkerConfig{Addr: m.Addr(), Slots: 1, Name: "w0"})
		if _, err := w.Run(); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	results := m.Wait()
	if len(results) != len(exps) {
		t.Fatalf("results = %d of %d", len(results), len(exps))
	}
	for _, r := range results {
		if !strings.HasPrefix(r.Worker, "w0") {
			t.Errorf("experiment %d: worker = %q, want w0 slot", r.ID, r.Worker)
		}
		if r.WallNs <= 0 {
			t.Errorf("experiment %d: wallNs = %d", r.ID, r.WallNs)
		}
	}

	traces := rec.Traces()
	if len(traces) != len(exps) {
		t.Fatalf("traces = %d, want %d", len(traces), len(exps))
	}
	seenExp := map[int]int{}
	for _, tr := range traces {
		root := tr.Root()
		if root == nil || root.Name != "experiment" || root.ParentID != "" {
			t.Fatalf("bad root: %+v", root)
		}
		id, ok := root.Attrs["exp_id"].(int)
		if !ok {
			t.Fatalf("root missing exp_id attr: %+v", root.Attrs)
		}
		seenExp[id]++
		if _, ok := root.Attrs["clock_skew_ns"]; !ok {
			t.Errorf("experiment %d: root missing clock_skew_ns", id)
		}
		var worker *obs.SpanRecord
		for i := range tr.Spans {
			if tr.Spans[i].Name == "worker" {
				worker = &tr.Spans[i]
			}
		}
		if worker == nil {
			t.Fatalf("experiment %d: no worker span among %d spans", id, len(tr.Spans))
		}
		if worker.ParentID != root.SpanID {
			t.Errorf("experiment %d: worker span parented under %s, want root %s",
				id, worker.ParentID, root.SpanID)
		}
		var buf bytes.Buffer
		if err := obs.WriteTraceJSONL(&buf, *tr); err != nil {
			t.Fatal(err)
		}
		if _, err := obs.ValidateSpansJSONL(&buf); err != nil {
			t.Errorf("experiment %d: stitched tree invalid: %v", id, err)
		}
	}
	for id, n := range seenExp {
		if n != 1 {
			t.Errorf("experiment %d has %d span trees, want exactly 1", id, n)
		}
	}
	if len(seenExp) != len(exps) {
		t.Errorf("distinct experiment trees = %d, want %d", len(seenExp), len(exps))
	}
}

// TestNoWSpanRetryAfterWorkerDeath: a worker that dies holding an
// assignment must leave exactly one span tree for the experiment — the
// half-built trace is abandoned, and the retried run gets a fresh root
// carrying retry_of.
func TestNoWSpanRetryAfterWorkerDeath(t *testing.T) {
	m, exps, rec := startSpanCampaign(t, 6)

	// A flaky client fetches one experiment (with its trace context)
	// and disconnects without reporting a result.
	c, err := dialRaw(m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.send(Message{Type: MsgHello, WorkerName: "flaky"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.recv(); err != nil { // welcome
		t.Fatal(err)
	}
	if err := c.send(Message{Type: MsgFetch}); err != nil {
		t.Fatal(err)
	}
	assigned, err := c.recv()
	if err != nil {
		t.Fatal(err)
	}
	if assigned.Experiment == nil || assigned.Trace == nil {
		t.Fatalf("assignment missing experiment or trace context: %+v", assigned)
	}
	lostExp := assigned.Experiment.ID
	lostTrace := assigned.Trace.TraceID
	c.close() // dies holding the assignment

	go func() {
		w := NewWorker(WorkerConfig{Addr: m.Addr(), Slots: 1, Name: "w0"})
		if _, err := w.Run(); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	results := m.Wait()
	if len(results) != len(exps) {
		t.Fatalf("campaign incomplete after worker death: %d of %d", len(results), len(exps))
	}

	if rec.TraceByID(lostTrace) != nil {
		t.Error("abandoned trace of the dead worker survived in the ring")
	}
	if rec.Dropped() == 0 {
		t.Error("abandoned spans not counted as dropped")
	}
	traces := rec.Traces()
	if len(traces) != len(exps) {
		t.Fatalf("traces = %d, want exactly %d (one tree per experiment)", len(traces), len(exps))
	}
	var retried *obs.SpanRecord
	perExp := map[int]int{}
	for _, tr := range traces {
		root := tr.Root()
		id, _ := root.Attrs["exp_id"].(int)
		perExp[id]++
		if id == lostExp {
			retried = root
		}
	}
	for id, n := range perExp {
		if n != 1 {
			t.Errorf("experiment %d has %d span trees, want exactly 1", id, n)
		}
	}
	if retried == nil {
		t.Fatalf("no span tree for requeued experiment %d", lostExp)
	}
	if got, _ := retried.Attrs["retry_of"].(string); got != lostTrace {
		t.Errorf("retry_of = %q, want abandoned trace %q", got, lostTrace)
	}
	if retried.TraceID == lostTrace {
		t.Error("retried experiment reused the abandoned trace ID")
	}
}
