package now

import (
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// MasterConfig parameterizes a campaign master.
type MasterConfig struct {
	// Workload + Scale identify the application; workers rebuild the
	// (deterministic) program image locally and receive the checkpoint.
	Workload string
	Scale    workloads.Scale

	Experiments []campaign.Experiment

	// Model / MaxInsts configure worker simulators.
	Model    sim.ModelKind
	MaxInsts uint64

	// Quiet suppresses progress logging.
	Quiet bool

	// Metrics, when set, receives master telemetry: queue depth and
	// in-flight gauges (pull-collectors), requeue/heartbeat counters,
	// and the completed-result count. Nil disables.
	Metrics *obs.Registry

	// Spans, when set, turns on distributed span tracing: the master
	// roots one "experiment" span per dispatch, workers are told (via
	// the welcome) to record their side and ship it back on results,
	// and the worker spans are stitched under the master's span with a
	// clock-skew annotation. Experiments requeued by worker death have
	// their partial trace abandoned; the retry's fresh span carries a
	// retry_of attribute naming the abandoned trace. Nil disables.
	Spans *obs.SpanRecorder

	// Flight tells workers (via the welcome) to attach a flight recorder
	// and ship post-mortem dumps back on interesting results
	// (Result.Postmortem).
	Flight bool
}

// WorkerStat is a point-in-time view of one worker connection, built
// from hello and heartbeat messages.
type WorkerStat struct {
	// Name is the worker's self-reported name (hello WorkerName).
	Name string
	// LastSeen is the time of the last message from the worker.
	LastSeen time.Time
	// Done is the completed-experiment count from the latest heartbeat.
	Done int
}

// Master owns the experiment queue and the checkpoint, and serves
// workers over TCP.
type Master struct {
	cfg    MasterConfig
	ln     net.Listener
	ckpt   []byte
	window uint64
	start  time.Time

	mu       sync.Mutex
	pending  []campaign.Experiment
	flight   map[string][]campaign.Experiment // per-connection assignments
	results  map[int]campaign.Result
	workers  map[string]*WorkerStat // per-connection liveness, keyed like flight
	expSpans map[int]*masterExp     // open master-side experiment spans, by exp ID
	retryOf  map[int]string         // exp ID -> abandoned trace ID (worker died)
	requeued int
	want     int
	draining bool // Shutdown called: fetches answer done, no new takes
	doneCh   chan struct{}

	requeuedC   *obs.Counter
	heartbeatsC *obs.Counter

	wg sync.WaitGroup
}

// masterExp is the master's side of one in-flight traced experiment:
// the open root span plus the dispatch wall-clock, kept for the
// NTP-style skew estimate when the worker's spans come back.
type masterExp struct {
	span   *obs.Span
	sentNS int64
}

// NewMaster prepares the campaign: runs the golden simulation up to
// fi_read_init_all, captures the checkpoint, and starts listening on
// addr (e.g. "127.0.0.1:0").
func NewMaster(addr string, cfg MasterConfig) (*Master, error) {
	if cfg.Model == "" {
		cfg.Model = sim.ModelAtomic
	}
	if cfg.MaxInsts == 0 {
		cfg.MaxInsts = 2_000_000_000
	}
	w, err := workloads.ByName(cfg.Workload, cfg.Scale)
	if err != nil {
		return nil, err
	}
	runnerCfg := sim.Config{Model: cfg.Model, EnableFI: true, MaxInsts: cfg.MaxInsts}
	runner, err := campaign.NewRunner(w, campaign.RunnerOptions{Cfg: &runnerCfg})
	if err != nil {
		return nil, err
	}
	ckptBytes, err := runner.Ckpt.Bytes()
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &Master{
		cfg:      cfg,
		ln:       ln,
		ckpt:     ckptBytes,
		window:   runner.WindowInsts,
		start:    time.Now(),
		pending:  append([]campaign.Experiment(nil), cfg.Experiments...),
		flight:   make(map[string][]campaign.Experiment),
		results:  make(map[int]campaign.Result),
		workers:  make(map[string]*WorkerStat),
		expSpans: make(map[int]*masterExp),
		retryOf:  make(map[int]string),
		want:     len(cfg.Experiments),
		doneCh:   make(chan struct{}),
	}
	m.registerMetrics()
	m.wg.Add(1)
	go m.accept()
	return m, nil
}

// registerMetrics wires master telemetry into the configured registry;
// the gauges are pull-collectors so the scheduler pays nothing per
// experiment.
func (m *Master) registerMetrics() {
	r := m.cfg.Metrics
	m.requeuedC = r.Counter("now.master.requeued")
	m.heartbeatsC = r.Counter("now.master.heartbeats")
	if r == nil {
		return
	}
	locked := func(f func() float64) func() float64 {
		return func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return f()
		}
	}
	r.RegisterFunc("now.master.queue_depth", locked(func() float64 {
		return float64(len(m.pending))
	}))
	r.RegisterFunc("now.master.inflight", locked(func() float64 {
		n := 0
		for _, exps := range m.flight {
			n += len(exps)
		}
		return float64(n)
	}))
	r.RegisterFunc("now.master.results", locked(func() float64 {
		return float64(len(m.results))
	}))
	r.RegisterFunc("now.master.workers", locked(func() float64 {
		return float64(len(m.workers))
	}))
}

// Addr returns the listening address workers should dial.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// WindowInsts returns the golden run's fault-injection window size (for
// generating experiments against this master's workload).
func (m *Master) WindowInsts() uint64 { return m.window }

// Requeued returns how many experiments were returned to the queue by
// worker disconnects so far.
func (m *Master) Requeued() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requeued
}

// MasterStatus is a point-in-time view of a distributed campaign,
// served as JSON by the master CLI's -http /status endpoint.
type MasterStatus struct {
	Workload    string         `json:"workload"`
	Total       int            `json:"total"`
	Done        int            `json:"done"`
	QueueDepth  int            `json:"queueDepth"`
	InFlight    int            `json:"inFlight"`
	Requeued    int            `json:"requeued"`
	Workers     []WorkerJSON   `json:"workers"`
	Outcomes    map[string]int `json:"outcomes"`
	ElapsedSec  float64        `json:"elapsedSec"`
	ExpsPerSec  float64        `json:"expsPerSec"`
	WindowInsts uint64         `json:"windowInsts"`
}

// WorkerJSON is a WorkerStat with a JSON-friendly liveness age.
type WorkerJSON struct {
	Name        string  `json:"name"`
	Done        int     `json:"done"`
	LastSeenSec float64 `json:"lastSeenSec"` // seconds since last message
}

// Status reads the live campaign state. Safe to call from any goroutine
// while the master serves workers.
func (m *Master) Status() MasterStatus {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	st := MasterStatus{
		Workload:    m.cfg.Workload,
		Total:       m.want,
		Done:        len(m.results),
		QueueDepth:  len(m.pending),
		Requeued:    m.requeued,
		Outcomes:    make(map[string]int),
		ElapsedSec:  now.Sub(m.start).Seconds(),
		WindowInsts: m.window,
	}
	for _, exps := range m.flight {
		st.InFlight += len(exps)
	}
	for _, r := range m.results {
		st.Outcomes[r.Outcome.String()]++
	}
	if st.ElapsedSec > 0 {
		st.ExpsPerSec = float64(st.Done) / st.ElapsedSec
	}
	st.Workers = make([]WorkerJSON, 0, len(m.workers))
	for _, ws := range m.workers {
		st.Workers = append(st.Workers, WorkerJSON{
			Name: ws.Name, Done: ws.Done,
			LastSeenSec: now.Sub(ws.LastSeen).Seconds(),
		})
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].Name < st.Workers[j].Name })
	return st
}

// Workers returns a snapshot of the connected workers' liveness stats,
// sorted by name.
func (m *Master) Workers() []WorkerStat {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WorkerStat, 0, len(m.workers))
	for _, ws := range m.workers {
		out = append(out, *ws)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// accept serves worker connections until the listener closes.
func (m *Master) accept() {
	defer m.wg.Done()
	var id int
	for {
		raw, err := m.ln.Accept()
		if err != nil {
			return
		}
		id++
		name := fmt.Sprintf("conn%d-%s", id, raw.RemoteAddr())
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.serve(name, newConn(raw))
		}()
	}
}

// serve runs the master side of one worker connection.
func (m *Master) serve(name string, c *conn) {
	defer c.close()
	defer m.requeue(name)
	defer m.dropWorker(name)

	hello, err := c.recv()
	if err != nil || hello.Type != MsgHello {
		return
	}
	m.noteWorker(name, hello.WorkerName, 0)
	welcome := Message{
		Type:        MsgWelcome,
		Workload:    m.cfg.Workload,
		Scale:       int(m.cfg.Scale),
		Checkpoint:  m.ckpt,
		WindowInsts: m.window,
		Model:       string(m.cfg.Model),
		MaxInsts:    m.cfg.MaxInsts,
		SpanTrace:   m.cfg.Spans != nil,
		Flight:      m.cfg.Flight,
	}
	if err := c.send(welcome); err != nil {
		return
	}
	for {
		msg, err := c.recv()
		if err != nil {
			return
		}
		switch msg.Type {
		case MsgFetch:
			exp, ctx, ok := m.take(name)
			if !ok {
				_ = c.send(Message{Type: MsgDone})
				return
			}
			out := Message{Type: MsgExperiment, Experiment: &exp}
			if ctx.Valid() {
				out.Trace = &ctx
			}
			if err := c.send(out); err != nil {
				return
			}
		case MsgResult:
			if msg.Result != nil {
				m.complete(name, *msg.Result, msg.Spans)
			}
		case MsgHeartbeat:
			m.heartbeatsC.Inc()
			m.noteWorker(name, msg.WorkerName, msg.Completed)
		default:
			_ = c.send(Message{Type: MsgError, Error: "unexpected " + msg.Type})
			return
		}
	}
}

// noteWorker refreshes a connection's liveness record.
func (m *Master) noteWorker(conn, reported string, done int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ws := m.workers[conn]
	if ws == nil {
		ws = &WorkerStat{Name: conn}
		m.workers[conn] = ws
	}
	if reported != "" {
		ws.Name = reported
	}
	ws.LastSeen = time.Now()
	if done > ws.Done {
		ws.Done = done
	}
}

// dropWorker removes a disconnected worker's liveness record.
func (m *Master) dropWorker(conn string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.workers, conn)
}

// take pops one pending experiment and records the assignment. With
// span tracing on it also roots the experiment's trace — the master
// owns the root so the trace exists even if the worker dies — and
// returns the context the worker's spans should parent under.
func (m *Master) take(worker string) (campaign.Experiment, obs.SpanContext, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining || len(m.pending) == 0 {
		return campaign.Experiment{}, obs.SpanContext{}, false
	}
	exp := m.pending[0]
	m.pending = m.pending[1:]
	m.flight[worker] = append(m.flight[worker], exp)
	var ctx obs.SpanContext
	if m.cfg.Spans != nil {
		sp := m.cfg.Spans.StartRoot("experiment")
		workerName := worker
		if ws := m.workers[worker]; ws != nil && ws.Name != "" {
			workerName = ws.Name
		}
		sp.SetTrack(workerName)
		sp.SetAttr("exp_id", exp.ID)
		sp.SetAttr("workload", m.cfg.Workload)
		sp.SetAttr("worker", workerName)
		if len(exp.Faults) > 0 {
			sp.SetAttr("fault", exp.Faults[0].String())
		}
		if prev := m.retryOf[exp.ID]; prev != "" {
			sp.SetAttr("retry_of", prev)
			delete(m.retryOf, exp.ID)
		}
		m.expSpans[exp.ID] = &masterExp{span: sp, sentNS: time.Now().UnixNano()}
		ctx = sp.Context()
	}
	return exp, ctx, true
}

// complete records a result and clears the assignment. Worker-side
// spans (if any) are stitched under the master's experiment span with
// an NTP-style clock-skew estimate, so one /trace/{id} lookup shows
// the whole submit-to-verdict story even though the phases ran on
// another machine's clock.
func (m *Master) complete(worker string, r campaign.Result, spans []obs.SpanRecord) {
	recvNS := time.Now().UnixNano()
	m.mu.Lock()
	defer m.mu.Unlock()
	assigned := m.flight[worker]
	for i, e := range assigned {
		if e.ID == r.ID {
			m.flight[worker] = append(assigned[:i], assigned[i+1:]...)
			break
		}
	}
	if r.Worker == "" {
		if ws := m.workers[worker]; ws != nil && ws.Name != "" {
			r.Worker = ws.Name
		} else {
			r.Worker = worker
		}
	}
	if me := m.expSpans[r.ID]; me != nil {
		delete(m.expSpans, r.ID)
		sp := me.span
		if len(spans) > 0 {
			// The worker's root span ("worker") parents directly under
			// the master span; its endpoints, against our send/receive
			// times, give the classic two-sample offset estimate.
			rootID := sp.Context().SpanID
			for i := range spans {
				if spans[i].ParentID == rootID && spans[i].EndNS > 0 {
					skew := ((me.sentNS - spans[i].StartNS) + (recvNS - spans[i].EndNS)) / 2
					sp.SetAttr("clock_skew_ns", skew)
					break
				}
			}
			m.cfg.Spans.ImportSpans(spans)
		}
		sp.SetAttr("worker", r.Worker)
		sp.SetAttr("outcome", r.Outcome.String())
		sp.SetAttr("fired", r.Fired)
		sp.SetTicks(0, r.Ticks)
		if r.Outcome == campaign.OutcomeCrashed {
			sp.SetStatus("crashed: " + r.CrashCause)
		}
		if r.Outcome == campaign.OutcomeCrashed || r.Outcome == campaign.OutcomeSDC {
			sp.ForceKeep()
		}
		sp.End()
	}
	if _, dup := m.results[r.ID]; !dup {
		m.results[r.ID] = r
		if !m.cfg.Quiet && len(m.results)%50 == 0 {
			elapsed := time.Since(m.start).Seconds()
			rate := 0.0
			if elapsed > 0 {
				rate = float64(len(m.results)) / elapsed
			}
			inflight := 0
			for _, exps := range m.flight {
				inflight += len(exps)
			}
			log.Printf("now: %d/%d experiments done (%.1f exp/s, %d queued, %d in flight, %d workers)",
				len(m.results), m.want, rate, len(m.pending), inflight, len(m.workers))
		}
		if len(m.results) == m.want {
			close(m.doneCh)
		}
	}
}

// requeue returns a dead worker's in-flight experiments to the queue.
// Their half-built traces are abandoned (the worker can no longer ship
// its spans) and remembered so the retry's fresh span can say what it
// replaces — exactly one span tree per experiment survives.
func (m *Master) requeue(worker string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if lost := m.flight[worker]; len(lost) > 0 {
		for _, e := range lost {
			if me := m.expSpans[e.ID]; me != nil {
				delete(m.expSpans, e.ID)
				m.retryOf[e.ID] = me.span.Context().TraceID
				m.cfg.Spans.Abandon(me.span.Context().TraceID)
			}
		}
		m.pending = append(m.pending, lost...)
		delete(m.flight, worker)
		m.requeued += len(lost)
		m.requeuedC.Add(uint64(len(lost)))
		if !m.cfg.Quiet {
			log.Printf("now: worker %s died, requeued %d experiment(s)", worker, len(lost))
		}
	}
}

// Wait blocks until every experiment has a result, then returns them
// ordered by ID. It closes the listener and briefly drains the serving
// goroutines so in-flight "done" replies reach their workers before the
// master process exits (bounded: a worker that connects and never
// fetches must not wedge shutdown).
func (m *Master) Wait() []campaign.Result {
	<-m.doneCh
	_ = m.ln.Close()
	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(2 * time.Second):
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]campaign.Result, 0, len(m.results))
	for i := 0; i < m.want; i++ {
		if r, ok := m.results[i]; ok {
			out = append(out, r)
		}
	}
	return out
}

// Shutdown drains the master gracefully: no experiment is handed out
// after the call (workers fetching get "done"), in-flight experiments
// are given up to deadline to report their results, and the results
// collected so far are returned ordered by ID. The listener is closed
// on the way out, so the master is finished after Shutdown returns —
// the SIGINT/SIGTERM path of the master CLI.
func (m *Master) Shutdown(deadline time.Duration) []campaign.Result {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()

	limit := time.Now().Add(deadline)
	for time.Now().Before(limit) {
		m.mu.Lock()
		inflight := 0
		for _, exps := range m.flight {
			inflight += len(exps)
		}
		m.mu.Unlock()
		if inflight == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	_ = m.ln.Close()
	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(2 * time.Second):
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]campaign.Result, 0, len(m.results))
	for i := 0; i < m.want; i++ {
		if r, ok := m.results[i]; ok {
			out = append(out, r)
		}
	}
	return out
}

// Close shuts the master down without waiting for completion.
func (m *Master) Close() {
	_ = m.ln.Close()
}
