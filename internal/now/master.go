package now

import (
	"fmt"
	"log"
	"net"
	"sync"

	"repro/internal/campaign"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// MasterConfig parameterizes a campaign master.
type MasterConfig struct {
	// Workload + Scale identify the application; workers rebuild the
	// (deterministic) program image locally and receive the checkpoint.
	Workload string
	Scale    workloads.Scale

	Experiments []campaign.Experiment

	// Model / MaxInsts configure worker simulators.
	Model    sim.ModelKind
	MaxInsts uint64

	// Quiet suppresses progress logging.
	Quiet bool
}

// Master owns the experiment queue and the checkpoint, and serves
// workers over TCP.
type Master struct {
	cfg    MasterConfig
	ln     net.Listener
	ckpt   []byte
	window uint64

	mu      sync.Mutex
	pending []campaign.Experiment
	flight  map[string][]campaign.Experiment // per-connection assignments
	results map[int]campaign.Result
	want    int
	doneCh  chan struct{}

	wg sync.WaitGroup
}

// NewMaster prepares the campaign: runs the golden simulation up to
// fi_read_init_all, captures the checkpoint, and starts listening on
// addr (e.g. "127.0.0.1:0").
func NewMaster(addr string, cfg MasterConfig) (*Master, error) {
	if cfg.Model == "" {
		cfg.Model = sim.ModelAtomic
	}
	if cfg.MaxInsts == 0 {
		cfg.MaxInsts = 2_000_000_000
	}
	w, err := workloads.ByName(cfg.Workload, cfg.Scale)
	if err != nil {
		return nil, err
	}
	runnerCfg := sim.Config{Model: cfg.Model, EnableFI: true, MaxInsts: cfg.MaxInsts}
	runner, err := campaign.NewRunner(w, campaign.RunnerOptions{Cfg: &runnerCfg})
	if err != nil {
		return nil, err
	}
	ckptBytes, err := runner.Ckpt.Bytes()
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &Master{
		cfg:     cfg,
		ln:      ln,
		ckpt:    ckptBytes,
		window:  runner.WindowInsts,
		pending: append([]campaign.Experiment(nil), cfg.Experiments...),
		flight:  make(map[string][]campaign.Experiment),
		results: make(map[int]campaign.Result),
		want:    len(cfg.Experiments),
		doneCh:  make(chan struct{}),
	}
	m.wg.Add(1)
	go m.accept()
	return m, nil
}

// Addr returns the listening address workers should dial.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// WindowInsts returns the golden run's fault-injection window size (for
// generating experiments against this master's workload).
func (m *Master) WindowInsts() uint64 { return m.window }

// accept serves worker connections until the listener closes.
func (m *Master) accept() {
	defer m.wg.Done()
	var id int
	for {
		raw, err := m.ln.Accept()
		if err != nil {
			return
		}
		id++
		name := fmt.Sprintf("conn%d-%s", id, raw.RemoteAddr())
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.serve(name, newConn(raw))
		}()
	}
}

// serve runs the master side of one worker connection.
func (m *Master) serve(name string, c *conn) {
	defer c.close()
	defer m.requeue(name)

	hello, err := c.recv()
	if err != nil || hello.Type != MsgHello {
		return
	}
	welcome := Message{
		Type:        MsgWelcome,
		Workload:    m.cfg.Workload,
		Scale:       int(m.cfg.Scale),
		Checkpoint:  m.ckpt,
		WindowInsts: m.window,
		Model:       string(m.cfg.Model),
		MaxInsts:    m.cfg.MaxInsts,
	}
	if err := c.send(welcome); err != nil {
		return
	}
	for {
		msg, err := c.recv()
		if err != nil {
			return
		}
		switch msg.Type {
		case MsgFetch:
			exp, ok := m.take(name)
			if !ok {
				_ = c.send(Message{Type: MsgDone})
				return
			}
			if err := c.send(Message{Type: MsgExperiment, Experiment: &exp}); err != nil {
				return
			}
		case MsgResult:
			if msg.Result != nil {
				m.complete(name, *msg.Result)
			}
		default:
			_ = c.send(Message{Type: MsgError, Error: "unexpected " + msg.Type})
			return
		}
	}
}

// take pops one pending experiment and records the assignment.
func (m *Master) take(worker string) (campaign.Experiment, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.pending) == 0 {
		return campaign.Experiment{}, false
	}
	exp := m.pending[0]
	m.pending = m.pending[1:]
	m.flight[worker] = append(m.flight[worker], exp)
	return exp, true
}

// complete records a result and clears the assignment.
func (m *Master) complete(worker string, r campaign.Result) {
	m.mu.Lock()
	defer m.mu.Unlock()
	assigned := m.flight[worker]
	for i, e := range assigned {
		if e.ID == r.ID {
			m.flight[worker] = append(assigned[:i], assigned[i+1:]...)
			break
		}
	}
	if _, dup := m.results[r.ID]; !dup {
		m.results[r.ID] = r
		if !m.cfg.Quiet && len(m.results)%50 == 0 {
			log.Printf("now: %d/%d experiments done", len(m.results), m.want)
		}
		if len(m.results) == m.want {
			close(m.doneCh)
		}
	}
}

// requeue returns a dead worker's in-flight experiments to the queue.
func (m *Master) requeue(worker string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if lost := m.flight[worker]; len(lost) > 0 {
		m.pending = append(m.pending, lost...)
		delete(m.flight, worker)
	}
}

// Wait blocks until every experiment has a result, then returns them
// ordered by ID. It closes the listener.
func (m *Master) Wait() []campaign.Result {
	<-m.doneCh
	_ = m.ln.Close()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]campaign.Result, 0, len(m.results))
	for i := 0; i < m.want; i++ {
		if r, ok := m.results[i]; ok {
			out = append(out, r)
		}
	}
	return out
}

// Close shuts the master down without waiting for completion.
func (m *Master) Close() {
	_ = m.ln.Close()
}
