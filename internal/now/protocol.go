// Package now implements GemFI's campaign distribution over a Network of
// Workstations (Section III.E of the paper). The paper uses shell scripts
// and an NFS share; this implementation replaces the share with a TCP
// master that plays the same role:
//
//  1. the master holds the fault configurations of all experiments;
//  2. a simulation is executed up to the fi_read_init_all point and the
//     checkpoint is stored on the master;
//  3. each worker gets a local copy of the checkpoint when it connects;
//  4. workers repeatedly fetch one remaining experiment, execute it
//     locally from the checkpointed state, and send the result back;
//  5. until no experiments are left.
//
// Workers that die mid-experiment have their assignments re-queued, which
// is what makes campaigns safe on non-dedicated machines.
package now

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// Message is the single wire envelope; Type selects which fields are
// meaningful. One JSON object per line.
type Message struct {
	Type string `json:"type"`

	// hello (worker -> master); WorkerName also rides on heartbeats
	WorkerName string `json:"workerName,omitempty"`

	// heartbeat (worker -> master): experiments this slot has completed
	Completed int `json:"completed,omitempty"`

	// welcome (master -> worker)
	Campaign    string `json:"campaign,omitempty"` // session's campaign (service masters)
	Workload    string `json:"workload,omitempty"`
	Scale       int    `json:"scale,omitempty"`
	Checkpoint  []byte `json:"checkpoint,omitempty"` // gob bytes (base64 via JSON)
	WindowInsts uint64 `json:"windowInsts,omitempty"`
	Model       string `json:"model,omitempty"`
	MaxInsts    uint64 `json:"maxInsts,omitempty"`

	// welcome (master -> worker): master records spans; workers should
	// record their side of each experiment and ship it back on results
	SpanTrace bool `json:"spanTrace,omitempty"`

	// welcome (master -> worker): the source wants flight-recorder
	// post-mortems; workers attach a recorder and ship dumps back on the
	// results of interesting experiments (Result.Postmortem)
	Flight bool `json:"flight,omitempty"`

	// experiment (master -> worker)
	Experiment *campaign.Experiment `json:"experiment,omitempty"`

	// experiment (master -> worker): distributed-trace context — the
	// master's experiment span, under which the worker's spans parent
	Trace *obs.SpanContext `json:"trace,omitempty"`

	// result (worker -> master)
	Result *campaign.Result `json:"result,omitempty"`

	// result (worker -> master): the worker-side span records of the
	// experiment, stitched into the master's trace on arrival
	Spans []obs.SpanRecord `json:"spans,omitempty"`

	// error (either direction)
	Error string `json:"error,omitempty"`
}

// Message types.
const (
	MsgHello      = "hello"
	MsgWelcome    = "welcome"
	MsgFetch      = "fetch"
	MsgExperiment = "experiment"
	MsgResult     = "result"
	MsgHeartbeat  = "heartbeat"
	MsgDone       = "done"
	MsgError      = "error"
)

// conn wraps a net.Conn with line-delimited JSON framing. Sends are
// mutex-serialized because a worker slot's heartbeat goroutine shares the
// connection with its fetch/result loop; receives stay single-reader.
type conn struct {
	raw net.Conn
	r   *bufio.Scanner
	wmu sync.Mutex
	w   *bufio.Writer
}

// maxLine bounds a single message (checkpoints ride in one line).
const maxLine = 256 << 20

func newConn(raw net.Conn) *conn {
	sc := bufio.NewScanner(raw)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	return &conn{raw: raw, r: sc, w: bufio.NewWriterSize(raw, 64<<10)}
}

// send writes one message; safe for concurrent callers.
func (c *conn) send(m Message) error {
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("now: marshal: %w", err)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return c.w.Flush()
}

// recv reads one message.
func (c *conn) recv() (Message, error) {
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return Message{}, err
		}
		return Message{}, fmt.Errorf("now: connection closed")
	}
	var m Message
	if err := json.Unmarshal(c.r.Bytes(), &m); err != nil {
		return Message{}, fmt.Errorf("now: bad message: %w", err)
	}
	return m, nil
}

func (c *conn) close() { _ = c.raw.Close() }

// dialRaw opens a framed connection to addr (exposed for tests and
// tools that speak the protocol directly).
func dialRaw(addr string) (*conn, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newConn(raw), nil
}
