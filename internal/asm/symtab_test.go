package asm

import (
	"testing"

	"repro/internal/isa"
)

// buildSymProg lays out three "functions" of 2/3/1 instructions plus a
// local label and a data symbol, with only the functions marked.
func buildSymProg(t *testing.T, mark bool) *Program {
	t.Helper()
	b := NewBuilder()
	def := b.Label
	if mark {
		def = b.Func
	}
	def("alpha")
	b.Nop()
	b.Nop()
	def("beta")
	b.Label(".Linner") // must never appear in the table
	b.Nop()
	b.Nop()
	b.Nop()
	def("gamma")
	b.Nop()
	b.Quad("blob", 1, 2)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSymbolTableLayout(t *testing.T) {
	for _, mark := range []bool{true, false} {
		p := buildSymProg(t, mark)
		syms := p.Symbols()
		if len(syms) != 3 {
			t.Fatalf("mark=%v: got %d symbols %v, want 3", mark, len(syms), syms)
		}
		wantName := []string{"alpha", "beta", "gamma"}
		wantSize := []uint64{8, 12, 4}
		for i, s := range syms {
			if s.Name != wantName[i] || s.Size != wantSize[i] {
				t.Errorf("mark=%v: sym[%d] = %+v, want %s size %d",
					mark, i, s, wantName[i], wantSize[i])
			}
		}
		if syms[0].Addr != p.TextBase {
			t.Errorf("alpha at 0x%x, want text base 0x%x", syms[0].Addr, p.TextBase)
		}
	}
}

func TestSymbolTableLookup(t *testing.T) {
	p := buildSymProg(t, true)
	syms := p.Symbols()
	base := p.TextBase

	cases := []struct {
		pc   uint64
		name string
		ok   bool
	}{
		{base, "alpha", true},
		{base + 4, "alpha", true},
		{base + 8, "beta", true},
		{base + 16, "beta", true},
		{base + 20, "gamma", true},
		{base - 4, "", false},
		{base + 24, "", false}, // past text end
		{p.DataBase, "", false},
	}
	for _, c := range cases {
		s, ok := syms.Lookup(c.pc)
		if ok != c.ok || (ok && s.Name != c.name) {
			t.Errorf("Lookup(0x%x) = %+v,%v, want %q,%v", c.pc, s, ok, c.name, c.ok)
		}
	}

	if got := syms.Format(base + 12); got != "beta+0x4" {
		t.Errorf("Format(beta+4) = %q", got)
	}
	if got := syms.Format(base + 8); got != "beta" {
		t.Errorf("Format(beta) = %q", got)
	}
	if got := syms.Format(base + 64); got != "0x10040" {
		t.Errorf("Format(out of range) = %q", got)
	}
	var empty SymbolTable
	if _, ok := empty.Lookup(base); ok {
		t.Error("empty table Lookup succeeded")
	}
}

func TestMarkedFuncsSuppressInnerLabels(t *testing.T) {
	b := NewBuilder()
	b.Func("f")
	b.Nop()
	b.Label("inner") // non-local, but unmarked while funcs exist
	b.Nop()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	syms := p.Symbols()
	if len(syms) != 1 || syms[0].Name != "f" || syms[0].Size != 8 {
		t.Fatalf("got %v, want single f covering 8 bytes", syms)
	}
	if p.Text[0] != isa.Nop() {
		t.Fatal("sanity: expected nop text")
	}
}
