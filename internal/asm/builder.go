// Package asm implements the Thessaly-64 toolchain back end: a
// programmatic instruction Builder with labels and data directives, a
// two-pass textual assembler on top of it, and the Program image format
// consumed by the simulator's loader. It plays the role of the cross
// assembler in the paper's workflow ("the end user compiles or
// cross-compiles the application to be tested").
package asm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/isa"
)

// Default memory layout of a program image.
const (
	DefaultTextBase = 0x0001_0000
	DataAlign       = 0x1000
)

// Program is a linked, loadable image.
type Program struct {
	Entry    uint64
	TextBase uint64
	Text     []isa.Word
	DataBase uint64
	Data     []byte
	// SymbolMap holds every label -> absolute address. For the sized,
	// sorted code view used by symbolization, see Symbols.
	SymbolMap map[string]uint64
	// FuncSyms marks which code symbols are function entry points
	// (Builder.Func). Empty for toolchains that never mark functions;
	// Symbols then falls back to treating every non-local label as one.
	FuncSyms map[string]bool
}

// Symbol resolves a label to its address.
func (p *Program) Symbol(name string) (uint64, bool) {
	a, ok := p.SymbolMap[name]
	return a, ok
}

// MustSymbol resolves a label, panicking if absent (programming error in
// the host harness, not runtime input).
func (p *Program) MustSymbol(name string) uint64 {
	a, ok := p.SymbolMap[name]
	if !ok {
		panic("asm: undefined symbol " + name)
	}
	return a
}

// fixupKind distinguishes the relocations the builder resolves at Build.
type fixupKind int

const (
	fixBranch fixupKind = iota + 1 // 21-bit word displacement to a label
	fixLAHigh                      // LDAH half of a load-address pair
	fixLALow                       // LDA half of a load-address pair
)

type fixup struct {
	kind  fixupKind
	index int    // text word index to patch
	sym   string // target symbol
}

type dataItem struct {
	label string
	bytes []byte
	align int
}

// Builder assembles a program image instruction by instruction. Errors
// are accumulated and reported by Build, so emission call sites stay
// clean.
type Builder struct {
	textBase uint64
	text     []isa.Word
	labels   map[string]uint64 // text labels -> absolute address
	funcs    map[string]bool   // labels marked as function entries
	fixups   []fixup
	data     []dataItem
	errs     []error
}

// NewBuilder returns a Builder with the default text base.
func NewBuilder() *Builder {
	return &Builder{textBase: DefaultTextBase, labels: make(map[string]uint64)}
}

func (b *Builder) errf(format string, args ...interface{}) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// PC returns the address of the next emitted instruction.
func (b *Builder) PC() uint64 { return b.textBase + uint64(len(b.text))*4 }

// Label defines a code label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errf("duplicate label %q", name)
		return
	}
	b.labels[name] = b.PC()
}

// Func defines a code label at the current position and marks it as a
// function entry, so Program.Symbols reports function-granularity
// ranges even when inner labels exist.
func (b *Builder) Func(name string) {
	b.Label(name)
	if b.funcs == nil {
		b.funcs = make(map[string]bool)
	}
	b.funcs[name] = true
}

// Raw emits a raw instruction word.
func (b *Builder) Raw(w isa.Word) { b.text = append(b.text, w) }

// Mem emits a memory-format instruction with a numeric displacement.
func (b *Builder) Mem(op isa.Opcode, ra, rb isa.Reg, disp int32) {
	w, err := isa.MakeMem(op, ra, rb, disp)
	if err != nil {
		b.errf("%v", err)
		w = isa.Nop()
	}
	b.Raw(w)
}

// Br emits a branch-format instruction targeting a label.
func (b *Builder) Br(op isa.Opcode, ra isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{kind: fixBranch, index: len(b.text), sym: label})
	w, _ := isa.MakeBranch(op, ra, 0)
	b.Raw(w)
}

// BrDisp emits a branch-format instruction with an explicit word
// displacement (target = PC+4 + disp*4), bypassing label resolution.
func (b *Builder) BrDisp(op isa.Opcode, ra isa.Reg, disp int32) {
	w, err := isa.MakeBranch(op, ra, disp)
	if err != nil {
		b.errf("%v", err)
		w = isa.Nop()
	}
	b.Raw(w)
}

// Op emits a register-form integer operate instruction.
func (b *Builder) Op(op isa.Opcode, fn uint16, ra, rb, rc isa.Reg) {
	b.Raw(isa.MakeOperate(op, fn, ra, rb, rc))
}

// OpLit emits a literal-form integer operate instruction; lit must fit in
// 8 unsigned bits.
func (b *Builder) OpLit(op isa.Opcode, fn uint16, ra isa.Reg, lit int64, rc isa.Reg) {
	if lit < 0 || lit > 255 {
		b.errf("operate literal %d out of range", lit)
		lit = 0
	}
	b.Raw(isa.MakeOperateLit(op, fn, ra, uint8(lit), rc))
}

// FP emits an FP-operate instruction.
func (b *Builder) FP(fn uint16, fa, fb, fc isa.Reg) { b.Raw(isa.MakeFP(fn, fa, fb, fc)) }

// Pal emits a PAL-format instruction.
func (b *Builder) Pal(fn uint32) { b.Raw(isa.MakePal(fn)) }

// Jump emits a memory-format jump.
func (b *Builder) Jump(ra, rb isa.Reg, hint int) { b.Raw(isa.MakeJump(ra, rb, hint)) }

// LA emits the canonical two-instruction absolute-address sequence
// (ldah reg, hi(sym)(zero); lda reg, lo(sym)(reg)).
func (b *Builder) LA(reg isa.Reg, sym string) {
	b.fixups = append(b.fixups, fixup{kind: fixLAHigh, index: len(b.text), sym: sym})
	w, _ := isa.MakeMem(isa.OpLDAH, reg, isa.ZeroReg, 0)
	b.Raw(w)
	b.fixups = append(b.fixups, fixup{kind: fixLALow, index: len(b.text), sym: sym})
	w, _ = isa.MakeMem(isa.OpLDA, reg, reg, 0)
	b.Raw(w)
}

// LoadImm materializes a signed immediate into reg: one lda for 16-bit
// values, an ldah/lda pair for most 32-bit values, and a shift-and-add
// sequence for the general 64-bit case.
func (b *Builder) LoadImm(reg isa.Reg, v int64) {
	if v >= math.MinInt16 && v <= math.MaxInt16 {
		b.Mem(isa.OpLDA, reg, isa.ZeroReg, int32(v))
		return
	}
	lo := int64(int16(v))
	hi := (v - lo) >> 16
	if hi >= math.MinInt16 && hi <= math.MaxInt16 {
		b.Mem(isa.OpLDAH, reg, isa.ZeroReg, int32(hi))
		if lo != 0 {
			b.Mem(isa.OpLDA, reg, reg, int32(lo))
		}
		return
	}
	// General case: decompose into four signed 16-bit pieces such that
	// v == ((p3<<16 + p2)<<16 + p1)<<16 + p0, then rebuild top-down.
	rem := v
	var pieces [4]int64
	for i := 0; i < 4; i++ {
		pieces[i] = int64(int16(rem))
		rem = (rem - pieces[i]) >> 16
	}
	b.Mem(isa.OpLDA, reg, isa.ZeroReg, int32(pieces[3]))
	for i := 2; i >= 0; i-- {
		b.OpLit(isa.OpIntShift, isa.FnSLL, reg, 16, reg)
		if pieces[i] != 0 {
			b.Mem(isa.OpLDA, reg, reg, int32(pieces[i]))
		}
	}
}

// Mov emits a register move (bis src, zero, dst).
func (b *Builder) Mov(src, dst isa.Reg) {
	b.Op(isa.OpIntLogic, isa.FnBIS, src, isa.ZeroReg, dst)
}

// FMov emits an FP register move (cpys src, src, dst).
func (b *Builder) FMov(src, dst isa.Reg) { b.FP(isa.FnCPYS, src, src, dst) }

// Nop emits the canonical no-op.
func (b *Builder) Nop() { b.Raw(isa.Nop()) }

// Quad adds 64-bit data words under a label.
func (b *Builder) Quad(label string, values ...uint64) {
	buf := make([]byte, 8*len(values))
	for i, v := range values {
		putU64(buf[i*8:], v)
	}
	b.data = append(b.data, dataItem{label: label, bytes: buf, align: 8})
}

// Double adds float64 data words under a label.
func (b *Builder) Double(label string, values ...float64) {
	buf := make([]byte, 8*len(values))
	for i, v := range values {
		putU64(buf[i*8:], math.Float64bits(v))
	}
	b.data = append(b.data, dataItem{label: label, bytes: buf, align: 8})
}

// Bytes adds raw bytes under a label.
func (b *Builder) Bytes(label string, bytes []byte) {
	cp := make([]byte, len(bytes))
	copy(cp, bytes)
	b.data = append(b.data, dataItem{label: label, bytes: cp, align: 8})
}

// Space reserves n zero bytes under a label.
func (b *Builder) Space(label string, n int) {
	b.data = append(b.data, dataItem{label: label, bytes: make([]byte, n), align: 8})
}

// splitAddr decomposes addr into (hi, lo) suitable for ldah/lda with
// signed 16-bit fields: addr == hi<<16 + signext(lo).
func splitAddr(addr uint64) (hi, lo int32) {
	lo = int32(int16(addr))
	hi = int32((addr - uint64(int64(lo))) >> 16)
	return hi, lo
}

// Build lays out the data section after text, resolves all fixups, and
// returns the program image.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	p := &Program{
		TextBase:  b.textBase,
		Text:      make([]isa.Word, len(b.text)),
		SymbolMap: make(map[string]uint64, len(b.labels)+len(b.data)),
	}
	copy(p.Text, b.text)
	for name, addr := range b.labels {
		p.SymbolMap[name] = addr
	}
	if len(b.funcs) > 0 {
		p.FuncSyms = make(map[string]bool, len(b.funcs))
		for name := range b.funcs {
			p.FuncSyms[name] = true
		}
	}

	// Data layout, 8-byte aligned items, section aligned to DataAlign.
	textEnd := b.textBase + uint64(len(b.text))*4
	p.DataBase = (textEnd + DataAlign - 1) &^ uint64(DataAlign-1)
	var data []byte
	for _, item := range b.data {
		for len(data)%item.align != 0 {
			data = append(data, 0)
		}
		addr := p.DataBase + uint64(len(data))
		if item.label != "" {
			if _, dup := p.SymbolMap[item.label]; dup {
				return nil, fmt.Errorf("duplicate symbol %q", item.label)
			}
			p.SymbolMap[item.label] = addr
		}
		data = append(data, item.bytes...)
	}
	p.Data = data

	// Fixups.
	for _, f := range b.fixups {
		target, ok := p.SymbolMap[f.sym]
		if !ok {
			return nil, fmt.Errorf("undefined symbol %q", f.sym)
		}
		switch f.kind {
		case fixBranch:
			pc := b.textBase + uint64(f.index)*4
			diff := int64(target) - int64(pc) - 4
			if diff%4 != 0 {
				return nil, fmt.Errorf("branch to unaligned target %q", f.sym)
			}
			disp := diff / 4
			op := isa.Opcode(uint32(p.Text[f.index]) >> 26)
			ra := isa.Reg(uint32(p.Text[f.index]) >> 21 & 31)
			w, err := isa.MakeBranch(op, ra, int32(disp))
			if err != nil {
				return nil, fmt.Errorf("branch to %q: %w", f.sym, err)
			}
			p.Text[f.index] = w
		case fixLAHigh, fixLALow:
			if target > math.MaxUint32 {
				return nil, fmt.Errorf("symbol %q above the 32-bit LA range", f.sym)
			}
			hi, lo := splitAddr(target)
			old := uint32(p.Text[f.index])
			var disp int32
			if f.kind == fixLAHigh {
				disp = hi
			} else {
				disp = lo
			}
			p.Text[f.index] = isa.Word(old&0xFFFF0000 | uint32(uint16(disp)))
		}
	}

	// Entry point.
	if e, ok := p.SymbolMap["_start"]; ok {
		p.Entry = e
	} else {
		p.Entry = p.TextBase
	}
	return p, nil
}

// SortedSymbols returns symbol names ordered by address (for
// disassembly listings).
func (p *Program) SortedSymbols() []string {
	names := make([]string, 0, len(p.SymbolMap))
	for n := range p.SymbolMap {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if p.SymbolMap[names[i]] != p.SymbolMap[names[j]] {
			return p.SymbolMap[names[i]] < p.SymbolMap[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}
