package asm

import (
	"testing"

	"repro/internal/isa"
)

// disasmSamples enumerates encodable words across all four instruction
// formats plus PAL, mirroring the ISA round-trip sample set.
func disasmSamples(t *testing.T) []isa.Word {
	t.Helper()
	var words []isa.Word
	emit := func(w isa.Word, err error) {
		if err != nil {
			t.Fatalf("sample encode: %v", err)
		}
		words = append(words, w)
	}

	for _, op := range []isa.Opcode{isa.OpLDA, isa.OpLDAH, isa.OpLDBU, isa.OpSTB,
		isa.OpLDQ, isa.OpSTQ, isa.OpLDT, isa.OpSTT} {
		for _, disp := range []int32{0, 1, -1, 255, 32767, -32768} {
			emit(isa.MakeMem(op, isa.RegT0, isa.RegSP, disp))
			emit(isa.MakeMem(op, isa.RegS0, isa.ZeroReg, disp))
		}
	}
	for _, ra := range []isa.Reg{isa.ZeroReg, isa.RegV0, isa.RegRA, isa.RegT5} {
		for hint := 0; hint < 4; hint++ {
			emit(isa.MakeJump(ra, isa.RegPV, hint), nil)
		}
	}
	for _, op := range []isa.Opcode{isa.OpBR, isa.OpBSR, isa.OpBEQ, isa.OpBNE,
		isa.OpBLT, isa.OpBLE, isa.OpBGE, isa.OpBGT, isa.OpFBEQ, isa.OpFBNE} {
		for _, disp := range []int32{0, 1, -1, (1 << 20) - 1, -(1 << 20)} {
			emit(isa.MakeBranch(op, isa.RegT3, disp))
		}
	}
	for _, ent := range opTable {
		emit(isa.MakeOperate(ent.op, ent.fn, isa.RegT0, isa.RegT1, isa.RegT2), nil)
		emit(isa.MakeOperateLit(ent.op, ent.fn, isa.RegA0, 255, isa.RegV0), nil)
	}
	for _, fn := range fpTable {
		emit(isa.MakeFP(fn, isa.Reg(1), isa.Reg(2), isa.Reg(3)), nil)
	}
	for _, pal := range []uint32{isa.PalHalt, isa.PalCallSys, isa.PalFIActivate,
		isa.PalFIInit, isa.PalNop} {
		emit(isa.MakePal(pal), nil)
	}
	return words
}

// TestDisassemblyReassembles asserts that the disassembler's output for
// every sampled word is valid assembler input producing the same word —
// so listings in divergence reports and trace dumps are directly usable
// as reproducer sources.
func TestDisassemblyReassembles(t *testing.T) {
	for _, w := range disasmSamples(t) {
		in := isa.Decode(w)
		if in.Kind == isa.KindIllegal {
			t.Fatalf("sample word %08x is illegal", uint32(w))
		}
		src := in.Disassemble(0)
		p, err := Assemble(src)
		if err != nil {
			t.Errorf("word %08x: %q does not assemble: %v", uint32(w), src, err)
			continue
		}
		if len(p.Text) != 1 {
			t.Errorf("word %08x: %q assembled to %d words", uint32(w), src, len(p.Text))
			continue
		}
		if p.Text[0] != w {
			t.Errorf("round trip changed word: %08x -> %q -> %08x (%s)",
				uint32(w), src, uint32(p.Text[0]), isa.Decode(p.Text[0]))
		}
	}
}

// TestBrDispMatchesLabelResolution pins the ".+N" displacement syntax to
// the label-based encoding of the same control flow.
func TestBrDispMatchesLabelResolution(t *testing.T) {
	viaLabel, err := Assemble("beq t0, skip\naddq t1, t2, t3\nskip:\n\tnop")
	if err != nil {
		t.Fatal(err)
	}
	viaDisp, err := Assemble("beq t0, .+1\naddq t1, t2, t3\nnop")
	if err != nil {
		t.Fatal(err)
	}
	if len(viaLabel.Text) != len(viaDisp.Text) {
		t.Fatalf("lengths differ: %d vs %d", len(viaLabel.Text), len(viaDisp.Text))
	}
	for i := range viaLabel.Text {
		if viaLabel.Text[i] != viaDisp.Text[i] {
			t.Fatalf("word %d: label form %08x, displacement form %08x",
				i, uint32(viaLabel.Text[i]), uint32(viaDisp.Text[i]))
		}
	}
}
