package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Assemble parses Thessaly-64 assembly source and returns the linked
// program image.
//
// Syntax overview:
//
//	.text / .data            switch sections
//	label:                   define a label in the current section
//	.quad 1, 2, 3            64-bit data words
//	.double 3.14, 2.71       float64 data words
//	.byte 1, 2, 3            raw bytes
//	.space 64                zeroed bytes
//	addq t0, t1, t2          register-form operate
//	addq t0, #5, t2          literal-form operate
//	ldq  v0, 16(sp)          memory format
//	beq  t0, loop            branch to a label
//	la   a0, table           load-address pseudo (ldah/lda pair)
//	li   t0, 100000          load-immediate pseudo
//	mov  t0, t1              register move pseudo
//	jsr  ra, (pv)            memory-format jump with JSR hint
//	ret                      jmp zero,(ra) with RET hint
//	callsys / halt / nop     PAL instructions
//	fi_activate_inst         GemFI pseudo-instruction (id in a0)
//	fi_read_init_all         GemFI pseudo-instruction (checkpoint)
//
// Comments run from '#' or ';' to the end of the line.
func Assemble(src string) (*Program, error) {
	b := NewBuilder()
	inData := false
	pendingDataLabel := ""
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t,(") {
				break
			}
			label := strings.TrimSpace(line[:i])
			if inData {
				pendingDataLabel = label
			} else {
				b.Label(label)
			}
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if err := assembleLine(b, line, &inData, &pendingDataLabel); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
	}
	if pendingDataLabel != "" {
		b.Space(pendingDataLabel, 0)
	}
	return b.Build()
}

// stripComment removes ";" and "//" comments. '#' is NOT a comment
// character — it introduces operate-format literals.
func stripComment(line string) string {
	for _, c := range []string{";", "//"} {
		if i := strings.Index(line, c); i >= 0 {
			line = line[:i]
		}
	}
	return line
}

func assembleLine(b *Builder, line string, inData *bool, pendingLabel *string) error {
	fields := strings.SplitN(line, " ", 2)
	mn := strings.ToLower(strings.TrimSpace(fields[0]))
	rest := ""
	if len(fields) > 1 {
		rest = strings.TrimSpace(fields[1])
	}
	takeLabel := func() string {
		l := *pendingLabel
		*pendingLabel = ""
		return l
	}

	switch mn {
	case ".text":
		*inData = false
		return nil
	case ".data":
		*inData = true
		return nil
	case ".quad":
		vals, err := parseIntList(rest)
		if err != nil {
			return err
		}
		us := make([]uint64, len(vals))
		for i, v := range vals {
			us[i] = uint64(v)
		}
		b.Quad(takeLabel(), us...)
		return nil
	case ".double":
		var vals []float64
		for _, p := range splitOperands(rest) {
			f, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return fmt.Errorf("bad float %q", p)
			}
			vals = append(vals, f)
		}
		b.Double(takeLabel(), vals...)
		return nil
	case ".byte":
		vals, err := parseIntList(rest)
		if err != nil {
			return err
		}
		bs := make([]byte, len(vals))
		for i, v := range vals {
			bs[i] = byte(v)
		}
		b.Bytes(takeLabel(), bs)
		return nil
	case ".space":
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 {
			return fmt.Errorf("bad .space size %q", rest)
		}
		b.Space(takeLabel(), n)
		return nil
	}

	if *inData {
		return fmt.Errorf("instruction %q inside .data", mn)
	}
	ops := splitOperands(rest)
	return assembleInst(b, mn, ops)
}

// opTable maps integer operate mnemonics to (opcode, function).
var opTable = map[string]struct {
	op isa.Opcode
	fn uint16
}{
	"addq": {isa.OpIntArith, isa.FnADDQ}, "subq": {isa.OpIntArith, isa.FnSUBQ},
	"cmpeq": {isa.OpIntArith, isa.FnCMPEQ}, "cmplt": {isa.OpIntArith, isa.FnCMPLT},
	"cmple": {isa.OpIntArith, isa.FnCMPLE}, "cmpult": {isa.OpIntArith, isa.FnCMPULT},
	"cmpule": {isa.OpIntArith, isa.FnCMPULE},
	"and":    {isa.OpIntLogic, isa.FnAND}, "bic": {isa.OpIntLogic, isa.FnBIC},
	"bis": {isa.OpIntLogic, isa.FnBIS}, "or": {isa.OpIntLogic, isa.FnBIS},
	"ornot": {isa.OpIntLogic, isa.FnORNOT}, "xor": {isa.OpIntLogic, isa.FnXOR},
	"eqv": {isa.OpIntLogic, isa.FnEQV},
	"sll": {isa.OpIntShift, isa.FnSLL}, "srl": {isa.OpIntShift, isa.FnSRL},
	"sra":  {isa.OpIntShift, isa.FnSRA},
	"mulq": {isa.OpIntMul, isa.FnMULQ}, "divq": {isa.OpIntMul, isa.FnDIVQ},
	"remq": {isa.OpIntMul, isa.FnREMQ},
}

// fpTable maps FP operate mnemonics to function codes.
var fpTable = map[string]uint16{
	"addt": isa.FnADDT, "subt": isa.FnSUBT, "mult": isa.FnMULT,
	"divt": isa.FnDIVT, "cmpteq": isa.FnCMPTEQ, "cmptlt": isa.FnCMPTLT,
	"cmptle": isa.FnCMPTLE, "sqrtt": isa.FnSQRTT, "cvttq": isa.FnCVTTQ,
	"cvtqt": isa.FnCVTQT, "cpys": isa.FnCPYS,
}

// memTable maps memory-format mnemonics to opcodes.
var memTable = map[string]isa.Opcode{
	"lda": isa.OpLDA, "ldah": isa.OpLDAH, "ldbu": isa.OpLDBU, "stb": isa.OpSTB,
	"ldq": isa.OpLDQ, "stq": isa.OpSTQ, "ldt": isa.OpLDT, "stt": isa.OpSTT,
}

// brTable maps branch mnemonics to opcodes.
var brTable = map[string]isa.Opcode{
	"br": isa.OpBR, "bsr": isa.OpBSR, "beq": isa.OpBEQ, "bne": isa.OpBNE,
	"blt": isa.OpBLT, "ble": isa.OpBLE, "bge": isa.OpBGE, "bgt": isa.OpBGT,
	"fbeq": isa.OpFBEQ, "fbne": isa.OpFBNE,
}

func assembleInst(b *Builder, mn string, ops []string) error {
	if ent, ok := opTable[mn]; ok {
		if len(ops) != 3 {
			return fmt.Errorf("%s wants 3 operands", mn)
		}
		ra, err := reg(ops[0])
		if err != nil {
			return err
		}
		rc, err := reg(ops[2])
		if err != nil {
			return err
		}
		if lit, isLit, err := literal(ops[1]); err != nil {
			return err
		} else if isLit {
			b.OpLit(ent.op, ent.fn, ra, lit, rc)
			return nil
		}
		rb, err := reg(ops[1])
		if err != nil {
			return err
		}
		b.Op(ent.op, ent.fn, ra, rb, rc)
		return nil
	}
	if fn, ok := fpTable[mn]; ok {
		if len(ops) != 3 {
			return fmt.Errorf("%s wants 3 operands", mn)
		}
		fa, err := reg(ops[0])
		if err != nil {
			return err
		}
		fb, err := reg(ops[1])
		if err != nil {
			return err
		}
		fc, err := reg(ops[2])
		if err != nil {
			return err
		}
		b.FP(fn, fa, fb, fc)
		return nil
	}
	if op, ok := memTable[mn]; ok {
		if len(ops) != 2 {
			return fmt.Errorf("%s wants 2 operands", mn)
		}
		ra, err := reg(ops[0])
		if err != nil {
			return err
		}
		disp, rb, err := memOperand(ops[1])
		if err != nil {
			return err
		}
		b.Mem(op, ra, rb, disp)
		return nil
	}
	if op, ok := brTable[mn]; ok {
		switch len(ops) {
		case 1: // unconditional without link: br label
			if op != isa.OpBR && op != isa.OpBSR {
				return fmt.Errorf("%s wants 2 operands", mn)
			}
			return branchTo(b, op, isa.ZeroReg, ops[0])
		case 2:
			ra, err := reg(ops[0])
			if err != nil {
				return err
			}
			return branchTo(b, op, ra, ops[1])
		default:
			return fmt.Errorf("%s wants 1 or 2 operands", mn)
		}
	}

	switch mn {
	case "jmp", "jsr", "ret", "jcr":
		hint := map[string]int{"jmp": isa.HintJMP, "jsr": isa.HintJSR, "ret": isa.HintRET, "jcr": isa.HintJCR}[mn]
		switch len(ops) {
		case 0:
			if mn != "ret" {
				return fmt.Errorf("%s wants operands", mn)
			}
			b.Jump(isa.ZeroReg, isa.RegRA, hint)
			return nil
		case 1:
			rb, err := reg(strings.Trim(ops[0], "()"))
			if err != nil {
				return err
			}
			link := isa.ZeroReg
			if mn == "jsr" {
				link = isa.RegRA
			}
			b.Jump(link, rb, hint)
			return nil
		case 2:
			ra, err := reg(ops[0])
			if err != nil {
				return err
			}
			rb, err := reg(strings.Trim(ops[1], "()"))
			if err != nil {
				return err
			}
			b.Jump(ra, rb, hint)
			return nil
		}
		return fmt.Errorf("%s wants at most 2 operands", mn)
	case "la":
		if len(ops) != 2 {
			return fmt.Errorf("la wants 2 operands")
		}
		r, err := reg(ops[0])
		if err != nil {
			return err
		}
		b.LA(r, ops[1])
		return nil
	case "li":
		if len(ops) != 2 {
			return fmt.Errorf("li wants 2 operands")
		}
		r, err := reg(ops[0])
		if err != nil {
			return err
		}
		v, err := parseInt(ops[1])
		if err != nil {
			return err
		}
		b.LoadImm(r, v)
		return nil
	case "mov":
		if len(ops) != 2 {
			return fmt.Errorf("mov wants 2 operands")
		}
		src, err := reg(ops[0])
		if err != nil {
			return err
		}
		dst, err := reg(ops[1])
		if err != nil {
			return err
		}
		b.Mov(src, dst)
		return nil
	case "fmov":
		if len(ops) != 2 {
			return fmt.Errorf("fmov wants 2 operands")
		}
		src, err := reg(ops[0])
		if err != nil {
			return err
		}
		dst, err := reg(ops[1])
		if err != nil {
			return err
		}
		b.FMov(src, dst)
		return nil
	case "nop":
		b.Nop()
		return nil
	case "callsys":
		b.Pal(isa.PalCallSys)
		return nil
	case "halt":
		b.Pal(isa.PalHalt)
		return nil
	case "fi_activate_inst":
		b.Pal(isa.PalFIActivate)
		return nil
	case "fi_read_init_all":
		b.Pal(isa.PalFIInit)
		return nil
	}
	return fmt.Errorf("unknown mnemonic %q", mn)
}

// branchTo emits a branch to a label, or — when the target has the
// disassembler's ".+N"/".-N" relative form — with an explicit word
// displacement. The latter makes disassembler output re-assemblable.
func branchTo(b *Builder, op isa.Opcode, ra isa.Reg, target string) error {
	target = strings.TrimSpace(target)
	if strings.HasPrefix(target, ".") && len(target) > 1 {
		disp, err := strconv.ParseInt(target[1:], 0, 32)
		if err != nil {
			return fmt.Errorf("bad branch displacement %q", target)
		}
		b.BrDisp(op, ra, int32(disp))
		return nil
	}
	b.Br(op, ra, target)
	return nil
}

// reg parses a register operand.
func reg(s string) (isa.Reg, error) {
	r, ok := isa.RegByName(strings.TrimSpace(s))
	if !ok {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return r, nil
}

// literal parses a "#n" literal operand.
func literal(s string) (int64, bool, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "#") {
		return 0, false, nil
	}
	v, err := parseInt(s[1:])
	if err != nil {
		return 0, false, err
	}
	return v, true, nil
}

// memOperand parses "disp(reg)" or "(reg)".
func memOperand(s string) (int32, isa.Reg, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	dispStr := strings.TrimSpace(s[:open])
	var disp int64
	if dispStr != "" {
		var err error
		disp, err = parseInt(dispStr)
		if err != nil {
			return 0, 0, err
		}
	}
	r, err := reg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return int32(disp), r, nil
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	return v, nil
}

func parseIntList(s string) ([]int64, error) {
	var out []int64
	for _, p := range splitOperands(s) {
		v, err := parseInt(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func splitOperands(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
