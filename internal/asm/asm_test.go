package asm

import (
	"math"
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestBuilderBranchFixup(t *testing.T) {
	b := NewBuilder()
	b.Label("top")
	b.Op(isa.OpIntArith, isa.FnADDQ, 1, 2, 3)
	b.Br(isa.OpBNE, 1, "top")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := isa.Decode(p.Text[1])
	if in.Kind != isa.KindBNE || in.Disp != -2 {
		t.Fatalf("branch fixup wrong: %+v", in)
	}
}

func TestBuilderForwardBranch(t *testing.T) {
	b := NewBuilder()
	b.Br(isa.OpBR, isa.ZeroReg, "end")
	b.Nop()
	b.Nop()
	b.Label("end")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if in := isa.Decode(p.Text[0]); in.Disp != 2 {
		t.Fatalf("forward branch disp = %d, want 2", in.Disp)
	}
}

func TestBuilderUndefinedSymbol(t *testing.T) {
	b := NewBuilder()
	b.Br(isa.OpBR, isa.ZeroReg, "nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected undefined symbol error")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.Label("x")
	b.Nop()
	b.Label("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected duplicate label error")
	}
}

func TestLAFixupComputesAddress(t *testing.T) {
	b := NewBuilder()
	b.LA(isa.RegT0, "blob")
	b.Quad("blob", 7)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := p.MustSymbol("blob")
	// Emulate the ldah/lda pair.
	hiIn := isa.Decode(p.Text[0])
	loIn := isa.Decode(p.Text[1])
	got := uint64(int64(hiIn.Disp) << 16)
	got += uint64(int64(loIn.Disp))
	if got != want {
		t.Fatalf("la materializes 0x%x, want 0x%x", got, want)
	}
}

func TestLoadImmVariants(t *testing.T) {
	eval := func(v int64) uint64 {
		b := NewBuilder()
		b.LoadImm(isa.RegT0, v)
		p, err := b.Build()
		if err != nil {
			t.Fatalf("LoadImm(%d): %v", v, err)
		}
		var r uint64
		for _, w := range p.Text {
			in := isa.Decode(w)
			switch in.Kind {
			case isa.KindLDA:
				base := uint64(0)
				if in.Rb != isa.ZeroReg {
					base = r
				}
				r = base + uint64(int64(in.Disp))
			case isa.KindLDAH:
				base := uint64(0)
				if in.Rb != isa.ZeroReg {
					base = r
				}
				r = base + uint64(int64(in.Disp))<<16
			case isa.KindSLL:
				r = r << in.Lit
			default:
				t.Fatalf("unexpected inst %v", in)
			}
		}
		return r
	}
	for _, v := range []int64{0, 1, -1, 32767, -32768, 32768, 65536, 1 << 20, -(1 << 20), 123456789, 1 << 31, -(1 << 31), 1 << 47, 0x7FFFFFFFFFFFFFFF, -0x8000000000000000, 0x123456789ABCDEF0} {
		if got := eval(v); got != uint64(v) {
			t.Errorf("LoadImm(%d) = %d", v, int64(got))
		}
	}
}

func TestDataLayoutAndSymbols(t *testing.T) {
	b := NewBuilder()
	b.Nop()
	b.Quad("a", 1, 2)
	b.Double("d", 3.5)
	b.Bytes("bs", []byte{1, 2, 3})
	b.Space("sp", 100)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.DataBase%DataAlign != 0 {
		t.Errorf("data base 0x%x not aligned", p.DataBase)
	}
	a := p.MustSymbol("a")
	d := p.MustSymbol("d")
	if d != a+16 {
		t.Errorf("d at 0x%x, want a+16=0x%x", d, a+16)
	}
	bs := p.MustSymbol("bs")
	spc := p.MustSymbol("sp")
	if spc != bs+8 { // 3 bytes padded to 8 alignment
		t.Errorf("sp at 0x%x, want 0x%x", spc, bs+8)
	}
	// Check double encoding in the data blob.
	off := d - p.DataBase
	bits := uint64(0)
	for i := 0; i < 8; i++ {
		bits |= uint64(p.Data[off+uint64(i)]) << (8 * uint(i))
	}
	if math.Float64frombits(bits) != 3.5 {
		t.Errorf("double encoded wrong: %v", math.Float64frombits(bits))
	}
}

func TestAssembleBasicProgram(t *testing.T) {
	src := `
; compute 2+3 into v0 and loop once
_start:
    li   t0, 2
    li   t1, 3
    addq t0, t1, v0
    subq v0, #1, t2
loop:
    subq t2, #1, t2
    bne  t2, loop
    ret
.data
tbl: .quad 10, 20, 30
pi:  .double 3.14159
msg: .byte 72, 105
buf: .space 64
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.TextBase {
		t.Errorf("entry 0x%x, want text base 0x%x", p.Entry, p.TextBase)
	}
	for _, sym := range []string{"_start", "loop", "tbl", "pi", "msg", "buf"} {
		if _, ok := p.Symbol(sym); !ok {
			t.Errorf("missing symbol %q", sym)
		}
	}
	// ret assembles to a memory-format jump with the RET hint.
	last := isa.Decode(p.Text[len(p.Text)-1])
	if last.Kind != isa.KindJMP || last.Hint != isa.HintRET {
		t.Errorf("ret assembled to %v hint %d", last.Kind, last.Hint)
	}
}

func TestAssembleAllFormats(t *testing.T) {
	src := `
_start:
    ldq  v0, 8(sp)
    stq  v0, 16(sp)
    ldbu t0, 0(a0)
    stb  t0, 1(a0)
    ldt  f1, 0(a1)
    stt  f1, 8(a1)
    addt f1, f2, f3
    mult f1, f2, f3
    cmpteq f1, f2, f4
    sqrtt f31, f1, f2
    cvtqt f31, f1, f2
    cvttq f31, f1, f2
    fbeq f4, skip
    and  t0, t1, t2
    xor  t0, #255, t2
    sll  t0, #3, t1
    mulq t0, t1, t2
    divq t0, t1, t2
    remq t0, t1, t2
    cmplt t0, t1, t2
skip:
    la   a0, word
    li   a1, 70000
    mov  t0, t1
    fmov f1, f2
    bsr  ra, sub
    jmp  (t0)
    jsr  (pv)
    nop
    callsys
    fi_activate_inst
    fi_read_init_all
    halt
sub:
    ret
.data
word: .quad 1
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	// Every emitted word must decode to something legal.
	for i, w := range p.Text {
		if k := isa.Decode(w).Kind; k == isa.KindIllegal {
			t.Errorf("word %d (%08x) decodes illegal", i, uint32(w))
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus t0, t1, t2",
		"addq t0, t1",
		"ldq v0, sp",
		"beq t0",
		"li t0, notanumber",
		"addq t9000, t1, t2",
		".data\naddq t0, t1, t2",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestAssembleCommentsAndLabelsOnSameLine(t *testing.T) {
	p, err := Assemble("start: nop ; comment\n; full comment line\nend: ret")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 2 {
		t.Fatalf("want 2 instructions, got %d", len(p.Text))
	}
	if p.MustSymbol("end") != p.TextBase+4 {
		t.Error("label after comment line misplaced")
	}
}

func TestSortedSymbols(t *testing.T) {
	b := NewBuilder()
	b.Label("zz")
	b.Nop()
	b.Label("aa")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	names := p.SortedSymbols()
	if names[0] != "zz" || names[1] != "aa" {
		t.Errorf("symbols not address-sorted: %v", names)
	}
}

func TestEntryUsesStart(t *testing.T) {
	p, err := Assemble("nop\n_start: nop\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.TextBase+4 {
		t.Errorf("entry = 0x%x", p.Entry)
	}
}

func TestOperateLiteralRange(t *testing.T) {
	if _, err := Assemble("addq t0, #256, t1"); err == nil {
		t.Error("literal 256 must be rejected")
	}
	p, err := Assemble("addq t0, #255, t1")
	if err != nil {
		t.Fatal(err)
	}
	if in := isa.Decode(p.Text[0]); !in.IsLit || in.Lit != 255 {
		t.Error("literal 255 mis-assembled")
	}
}

func TestAssembleLargeProgram(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("_start:\n")
	for i := 0; i < 5000; i++ {
		sb.WriteString("addq t0, t1, t2\n")
	}
	sb.WriteString("ret\n")
	p, err := Assemble(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 5001 {
		t.Fatalf("got %d instructions", len(p.Text))
	}
}

func BenchmarkAssemble(b *testing.B) {
	src := `
_start:
    li t0, 100
loop:
    subq t0, #1, t0
    bne t0, loop
    ret
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}
