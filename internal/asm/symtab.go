package asm

import (
	"fmt"
	"sort"
)

// Symbol is one named address range in a program image. Size is the
// distance to the next symbol in the same section (or the section end),
// so text symbols tile the code they cover.
type Symbol struct {
	Name string
	Addr uint64
	Size uint64
}

// SymbolTable is a list of symbols sorted by address, supporting binary
// search from a PC back to the covering symbol. Build one with
// Program.Symbols.
type SymbolTable []Symbol

// Symbols returns the code symbol table for symbolizing PCs: every
// function symbol sorted by address, sized to tile the text section.
//
// When the toolchain marked function symbols explicitly (Builder.Func,
// as the mini-C code generator does), only those appear — inner labels
// never split a function. Otherwise every text label that is not a
// local label (leading '.') is taken to start a function, which is the
// right granularity for hand-written assembly where each label is a
// region of interest.
func (p *Program) Symbols() SymbolTable {
	textEnd := p.TextBase + uint64(len(p.Text))*4
	var t SymbolTable
	for name, addr := range p.SymbolMap {
		if addr < p.TextBase || addr >= textEnd {
			continue // data symbol
		}
		if len(p.FuncSyms) > 0 {
			if !p.FuncSyms[name] {
				continue
			}
		} else if len(name) > 0 && name[0] == '.' {
			continue // local label
		}
		t = append(t, Symbol{Name: name, Addr: addr})
	}
	sort.Slice(t, func(i, j int) bool {
		if t[i].Addr != t[j].Addr {
			return t[i].Addr < t[j].Addr
		}
		return t[i].Name < t[j].Name
	})
	for i := range t {
		end := textEnd
		if i+1 < len(t) {
			end = t[i+1].Addr
		}
		t[i].Size = end - t[i].Addr
	}
	return t
}

// Lookup returns the symbol covering pc (Addr <= pc < Addr+Size). The
// second result is false when pc falls outside every symbol.
func (t SymbolTable) Lookup(pc uint64) (Symbol, bool) {
	// First symbol strictly above pc; the candidate is the one before.
	i := sort.Search(len(t), func(i int) bool { return t[i].Addr > pc })
	if i == 0 {
		return Symbol{}, false
	}
	s := t[i-1]
	if pc >= s.Addr+s.Size {
		return Symbol{}, false
	}
	return s, true
}

// Format renders pc as "name+0xoff" against the table, falling back to
// bare hex when no symbol covers it (stripped images keep working).
func (t SymbolTable) Format(pc uint64) string {
	s, ok := t.Lookup(pc)
	if !ok {
		return fmt.Sprintf("0x%x", pc)
	}
	if pc == s.Addr {
		return s.Name
	}
	return fmt.Sprintf("%s+0x%x", s.Name, pc-s.Addr)
}
