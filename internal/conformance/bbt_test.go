package conformance

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// These tests pin the basic-block translator (internal/bbt) to the
// fully-hooked interpreter the same way the fast-path suite pins the
// caches: one run with translation on, one reference run, compared bit
// for bit — architectural state, counters, console, memory, golden
// traces, per-PC profiles and per-experiment fault verdicts.

// TestBBTArchIdentity runs the paper's six workloads on the atomic model
// with block translation against the DisableFastPath interpreter and
// demands indistinguishable end states. Each translated run must have
// actually executed translated instructions, or the test is vacuous.
func TestBBTArchIdentity(t *testing.T) {
	for _, w := range workloads.All(workloads.ScaleTest) {
		label := fmt.Sprintf("%s/atomic-bbt", w.Name)
		bbt := runWorkload(t, w, sim.Config{Model: sim.ModelAtomic, EnableFI: true,
			MaxInsts: 200_000_000, EnableBlockTranslation: true})
		ref := runWorkload(t, w, sim.Config{Model: sim.ModelAtomic, EnableFI: true,
			MaxInsts: 200_000_000, DisableFastPath: true})
		compareMachines(t, label, bbt, ref)
		if bbt.BBT == nil || bbt.BBT.Stats.Insts == 0 {
			t.Errorf("%s: no instructions were executed from translated blocks", label)
		}
	}
}

// TestBBTFastForwardIdentity puts translation under the campaign
// fast-forward prefix: a pipelined run whose atomic prefix translates
// must be architecturally identical to one whose prefix interprets, and
// must open the FI window at the same committed-instruction count (the
// anchor every instruction-timed fault hangs off).
func TestBBTFastForwardIdentity(t *testing.T) {
	for _, w := range workloads.All(workloads.ScaleTest) {
		run := func(bbt bool) *sim.Simulator {
			return runWorkload(t, w, sim.Config{Model: sim.ModelPipelined, EnableFI: true,
				MaxInsts: 200_000_000, FastForward: true, EnableBlockTranslation: bbt})
		}
		tr := run(true)
		ref := run(false)
		label := fmt.Sprintf("%s/fastforward-bbt", w.Name)
		if tr.Core.Arch != ref.Core.Arch {
			t.Errorf("%s: architectural state diverged", label)
		}
		if tr.Core.Insts != ref.Core.Insts {
			t.Errorf("%s: committed insts %d vs %d", label, tr.Core.Insts, ref.Core.Insts)
		}
		if tr.Kernel.Console() != ref.Kernel.Console() {
			t.Errorf("%s: console diverged", label)
		}
		if _, total := mem.DiffSnapshots(tr.Mem.Snapshot(), ref.Mem.Snapshot(), 4); total != 0 {
			t.Errorf("%s: %d bytes of memory diverged", label, total)
		}
		if tr.WindowOpenInsts != ref.WindowOpenInsts {
			t.Errorf("%s: window opened at inst %d vs %d — fault anchors would shift",
				label, tr.WindowOpenInsts, ref.WindowOpenInsts)
		}
		if tr.BBT == nil || tr.BBT.Stats.Insts == 0 {
			t.Errorf("%s: fast-forward prefix never executed a translated block", label)
		}
	}
}

// TestBBTObserverForcesInterpreter attaches the tracer and profiler to a
// translation-enabled run: per-instruction observers must force the
// interpreter (zero translated instructions, counted fallbacks), and the
// golden trace and per-PC profile must match the DisableFastPath
// reference exactly — translation being enabled must be unobservable.
func TestBBTObserverForcesInterpreter(t *testing.T) {
	for _, w := range workloads.All(workloads.ScaleTest) {
		label := fmt.Sprintf("%s/atomic-bbt-observed", w.Name)
		run := func(bbt, disable bool) (*sim.Simulator, *traceHash) {
			th := &traceHash{}
			s := sim.New(sim.Config{Model: sim.ModelAtomic, EnableFI: true,
				MaxInsts: 200_000_000, EnableProfiler: true,
				EnableBlockTranslation: bbt, DisableFastPath: disable})
			p, err := w.Build()
			if err != nil {
				t.Fatalf("%s: build: %v", label, err)
			}
			if err := s.Load(p); err != nil {
				t.Fatalf("%s: load: %v", label, err)
			}
			s.Core.TraceFn = th.fn
			if r := s.Run(); r.Hung || r.Interrupted {
				t.Fatalf("%s: did not finish: %+v", label, r)
			}
			return s, th
		}
		tr, trTrace := run(true, false)
		ref, refTrace := run(false, true)
		compareMachines(t, label, tr, ref)
		if *trTrace != *refTrace {
			t.Errorf("%s: golden trace diverged: %d/%x vs %d/%x",
				label, trTrace.n, trTrace.h, refTrace.n, refTrace.h)
		}
		tp, rp := tr.Profiler().Snapshot(), ref.Profiler().Snapshot()
		if tp.TotalInsts != rp.TotalInsts || tp.TotalCycles != rp.TotalCycles {
			t.Errorf("%s: profile totals diverged: %d/%d vs %d/%d",
				label, tp.TotalInsts, tp.TotalCycles, rp.TotalInsts, rp.TotalCycles)
		}
		if !reflect.DeepEqual(tp.PCs, rp.PCs) {
			t.Errorf("%s: per-PC profile diverged (%d vs %d rows)", label, len(tp.PCs), len(rp.PCs))
		}
		if tr.BBT.Stats.Insts != 0 {
			t.Errorf("%s: %d instructions ran translated despite attached observers",
				label, tr.BBT.Stats.Insts)
		}
		if tr.BBT.Stats.Fallbacks == 0 {
			t.Errorf("%s: observer-forced interpretation was not counted as fallbacks", label)
		}
	}
}

// TestBBTCampaignVerdictIdentity runs the same experiments through
// checkpointed fast-forward campaign runners with and without block
// translation and requires identical outcome classifications, fired
// flags and injection PCs — the fault anchors the translator's batched
// accounting must not move.
func TestBBTCampaignVerdictIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign pair per workload is slow")
	}
	for _, w := range workloads.All(workloads.ScaleTest) {
		newRunner := func(bbt bool) *campaign.Runner {
			cfg := sim.DefaultConfig()
			cfg.FastForward = true
			cfg.EnableBlockTranslation = bbt
			r, err := campaign.NewRunner(w, campaign.RunnerOptions{Cfg: &cfg})
			if err != nil {
				t.Fatalf("%s: runner: %v", w.Name, err)
			}
			return r
		}
		tr := newRunner(true)
		ref := newRunner(false)
		if tr.WindowInsts != ref.WindowInsts {
			t.Fatalf("%s: golden windows differ: %d vs %d", w.Name, tr.WindowInsts, ref.WindowInsts)
		}
		exps := campaign.GenerateUniform(6, campaign.GenConfig{WindowInsts: ref.WindowInsts, Seed: 42})
		for _, e := range exps {
			got := tr.Run(e)
			want := ref.Run(e)
			if got.Outcome != want.Outcome || got.Fired != want.Fired {
				t.Errorf("%s exp %d (%s): bbt %v/fired=%v, reference %v/fired=%v",
					w.Name, e.ID, e.Faults[0], got.Outcome, got.Fired, want.Outcome, want.Fired)
			}
			if got.InjPCValid != want.InjPCValid || got.InjPC != want.InjPC {
				t.Errorf("%s exp %d: injection PC diverged: %#x/%v vs %#x/%v",
					w.Name, e.ID, got.InjPC, got.InjPCValid, want.InjPC, want.InjPCValid)
			}
		}
	}
}
