package conformance

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/mem"
	"repro/internal/sim"
)

// ForkFuzzResult summarizes one fork-point fuzz run.
type ForkFuzzResult struct {
	Seed   int64
	Points int    // fork points actually exercised
	Insts  uint64 // straight-line run length
}

// ForkFuzz generates a random program (the lockstep fuzzer's generator),
// runs it straight through on the atomic model, then re-runs it as a
// trunk that freezes COW fork points at pseudo-random instruction counts.
// A child forked from every point and run to completion must finish
// bit-identical to the straight run — architectural state, memory image,
// console, exit status — and so must the trunk itself after all its
// freezes. Any difference means a frozen page leaked a write across the
// fork boundary.
func ForkFuzz(seed int64, points int, genCfg GenConfig) (ForkFuzzResult, error) {
	out := ForkFuzzResult{Seed: seed}
	p := Generate(seed, genCfg)
	prog, err := p.Build()
	if err != nil {
		return out, fmt.Errorf("seed %d: build: %w", seed, err)
	}

	newSim := func() (*sim.Simulator, error) {
		s := sim.New(sim.Config{Model: sim.ModelAtomic, MaxInsts: 50_000_000})
		if err := s.Load(prog); err != nil {
			return nil, err
		}
		return s, nil
	}

	ref, err := newSim()
	if err != nil {
		return out, fmt.Errorf("seed %d: load: %w", seed, err)
	}
	refRes := ref.Run()
	if refRes.Hung || refRes.Interrupted {
		return out, fmt.Errorf("seed %d: reference run did not finish: %+v", seed, refRes)
	}
	out.Insts = refRes.Insts
	refSnap := ref.Mem.Snapshot()

	// Pick distinct fork instants strictly inside the run.
	if out.Insts < 2 {
		return out, nil
	}
	rng := rand.New(rand.NewSource(seed ^ 0x666f726b)) // "fork"
	chosen := map[uint64]bool{}
	for len(chosen) < points && len(chosen) < int(out.Insts-1) {
		chosen[1+uint64(rng.Int63n(int64(out.Insts-1)))] = true
	}
	insts := make([]uint64, 0, len(chosen))
	for at := range chosen {
		insts = append(insts, at)
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })

	trunk, err := newSim()
	if err != nil {
		return out, fmt.Errorf("seed %d: load trunk: %w", seed, err)
	}
	for _, at := range insts {
		if r := trunk.RunUntil(at); !r.Paused {
			return out, fmt.Errorf("seed %d: trunk ended at %d insts before fork point %d",
				seed, r.Insts, at)
		}
		fp := trunk.CaptureForkPoint()
		child, err := newSim()
		if err != nil {
			return out, fmt.Errorf("seed %d: load child: %w", seed, err)
		}
		child.ForkFrom(fp, nil)
		cr := child.Run()
		if err := compareToRef(fmt.Sprintf("child forked at %d", at), child, cr, ref, refRes, refSnap); err != nil {
			return out, fmt.Errorf("seed %d: %w\nprogram:\n%s", seed, err, Listing(prog))
		}
		out.Points++
	}
	tr := trunk.Run()
	if err := compareToRef("trunk after freezes", trunk, tr, ref, refRes, refSnap); err != nil {
		return out, fmt.Errorf("seed %d: %w\nprogram:\n%s", seed, err, Listing(prog))
	}
	return out, nil
}

// compareToRef checks a finished simulator against the straight-line
// reference, bit for bit.
func compareToRef(label string, s *sim.Simulator, r sim.RunResult,
	ref *sim.Simulator, refRes sim.RunResult, refSnap mem.Snapshot) error {
	if r.Hung || r.Interrupted || r.Crashed != refRes.Crashed || r.ExitStatus != refRes.ExitStatus {
		return fmt.Errorf("%s: run disposition diverged: %+v vs %+v", label, r, refRes)
	}
	if r.Insts != refRes.Insts {
		return fmt.Errorf("%s: committed %d insts, reference %d", label, r.Insts, refRes.Insts)
	}
	if !s.Core.Arch.BitsEqual(&ref.Core.Arch) {
		return fmt.Errorf("%s: architectural state diverged", label)
	}
	if c, rc := s.Kernel.Console(), ref.Kernel.Console(); c != rc {
		return fmt.Errorf("%s: console diverged: %q vs %q", label, c, rc)
	}
	if _, total := mem.DiffSnapshots(s.Mem.Snapshot(), refSnap, 4); total != 0 {
		return fmt.Errorf("%s: %d bytes of memory diverged", label, total)
	}
	return nil
}
