package conformance

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

var update = flag.Bool("update", false, "regenerate golden trace fixtures in testdata/")

const goldenInterval = 50_000

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".trace")
}

// TestGoldenTraces verifies (or with -update, regenerates) a golden commit
// trace for each of the six paper workloads at test scale on the atomic
// model. Any semantic change to the ISA, assembler, kernel, memory system
// or atomic CPU moves a digest and is pinned to a commit window.
func TestGoldenTraces(t *testing.T) {
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			path := goldenPath(name)
			if *update {
				tr, err := Capture(name, "test", sim.ModelAtomic, goldenInterval)
				if err != nil {
					t.Fatal(err)
				}
				f, err := os.Create(path)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				if err := tr.Encode(f); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d insts, %d windows)", path, tr.Insts, len(tr.Windows))
				return
			}
			tr, err := ParseFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with: go test ./internal/conformance -run TestGoldenTraces -update)", err)
			}
			if tr.Workload != name {
				t.Fatalf("fixture %s is for workload %q", path, tr.Workload)
			}
			if err := tr.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The six fixtures must all be present, so a deleted file cannot silently
// skip its workload.
func TestGoldenFixturesExist(t *testing.T) {
	if *update {
		t.Skip("regenerating")
	}
	for _, name := range workloads.Names() {
		if _, err := os.Stat(goldenPath(name)); err != nil {
			t.Errorf("missing golden fixture for %s: %v (regenerate with -update)", name, err)
		}
	}
}

// Example of reading one fixture programmatically.
func ExampleParseFile() {
	tr, err := ParseFile(goldenPath("pi"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(tr.Workload, tr.Scale)
	// Output: pi test
}
