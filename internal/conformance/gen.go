// Package conformance enforces the paper's core validity claim: fault-free
// simulation must be deterministic and bit-identical across the atomic,
// timing and pipelined CPU models (Section V — the golden run is the
// reference every injection outcome is classified against, so any silent
// model divergence corrupts every campaign result downstream).
//
// It provides a seedable random program generator covering all four
// Thessaly-64 instruction formats, a lockstep differential harness that
// compares full architectural state at configurable sync intervals, a
// divergence reporter with disassembled trace diffs, a greedy program
// minimizer, and a golden-trace capture/verify format used as regression
// fixtures for the six paper workloads.
package conformance

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Register conventions of generated programs. Units operate on a small
// pool of value registers so that generated data flow is dense; the
// remaining registers have fixed structural roles and are never clobbered
// by pool operations.
const (
	intBase  = isa.RegS0   // r9:  base of the integer scratch buffer
	fpBase   = isa.Reg(10) // r10: base of the FP scratch buffer
	loopCtr  = isa.Reg(11) // r11: bounded-loop counter
	unitTmp  = isa.RegT8   // r22: unit-internal temporary
	addrTmp  = isa.RegAT   // r28: address temporary for computed jumps
	poolSize = 8           // value registers t0..t7 (r1..r8) and f1..f8
)

// Unit is one independently deletable fragment of a generated program.
// All random choices are made at generation time, so re-emitting a unit
// (during shrinking) is deterministic.
type Unit struct {
	Desc string
	emit func(b *asm.Builder) // body instructions, in program order
	aux  func(b *asm.Builder) // out-of-line code (leaf functions), or nil
}

// Program is a generated conformance test program: a fixed prologue and
// epilogue around a list of deletable units.
type Program struct {
	Seed  int64
	Units []Unit
}

// Build assembles the program image: prologue (scratch base registers),
// the unit bodies, a clean exit, then out-of-line leaf functions and the
// scratch data sections.
func (p *Program) Build() (*asm.Program, error) {
	b := asm.NewBuilder()
	b.Label("_start")
	b.LA(intBase, "iscratch")
	b.LA(fpBase, "fscratch")
	for i := range p.Units {
		p.Units[i].emit(b)
	}
	// Exit status: a register checksum folded into 8 bits, so epilogue
	// state feeds the exit-code comparison even without a register diff.
	b.Op(isa.OpIntLogic, isa.FnXOR, 1, 2, isa.RegA0)
	b.OpLit(isa.OpIntLogic, isa.FnAND, isa.RegA0, 255, isa.RegA0)
	b.LoadImm(isa.RegV0, int64(isa.SysExit))
	b.Pal(isa.PalCallSys)
	for i := range p.Units {
		if p.Units[i].aux != nil {
			p.Units[i].aux(b)
		}
	}
	b.Space("iscratch", 256)
	b.Space("fscratch", 256)
	return b.Build()
}

// without returns a copy of the program with units [i, j) removed.
func (p *Program) without(i, j int) *Program {
	units := make([]Unit, 0, len(p.Units)-(j-i))
	units = append(units, p.Units[:i]...)
	units = append(units, p.Units[j:]...)
	return &Program{Seed: p.Seed, Units: units}
}

// GenConfig tunes program generation.
type GenConfig struct {
	// Units is the number of body units (0 = seed-derived default in
	// [24, 80)).
	Units int
}

// Generate produces a random but well-formed, always-terminating program:
// every loop is counter-bounded, every call targets a leaf function that
// returns, forward branches skip a fixed window, and memory accesses stay
// inside the scratch buffers.
func Generate(seed int64, cfg GenConfig) *Program {
	rng := rand.New(rand.NewSource(seed))
	n := cfg.Units
	if n <= 0 {
		n = 24 + rng.Intn(56)
	}
	g := &generator{rng: rng}
	units := make([]Unit, 0, n)
	for i := 0; i < n; i++ {
		units = append(units, g.unit(i))
	}
	return &Program{Seed: seed, Units: units}
}

// generator holds the RNG; unit constructors freeze all parameters into
// closures so emission is replayable.
type generator struct {
	rng *rand.Rand
}

func (g *generator) reg() isa.Reg  { return isa.Reg(1 + g.rng.Intn(poolSize)) }
func (g *generator) freg() isa.Reg { return isa.Reg(1 + g.rng.Intn(poolSize)) }

// unit draws one weighted-random unit. Data-flow units dominate; control
// flow and PAL serialization points are sprinkled in.
func (g *generator) unit(idx int) Unit {
	switch r := g.rng.Intn(100); {
	case r < 16:
		return g.aluReg()
	case r < 26:
		return g.aluLit()
	case r < 34:
		return g.loadImm()
	case r < 44:
		return g.memQuad()
	case r < 50:
		return g.memByte()
	case r < 56:
		return g.fpInit()
	case r < 66:
		return g.fpOp()
	case r < 72:
		return g.fpMem()
	case r < 78:
		return g.fwdBranch(idx)
	case r < 84:
		return g.loop(idx)
	case r < 89:
		return g.call(idx)
	case r < 92:
		return g.jump(idx)
	case r < 96:
		return g.divMod()
	case r < 98:
		return g.putc()
	default:
		return g.nop()
	}
}

var intALU = []struct {
	op isa.Opcode
	fn uint16
	mn string
}{
	{isa.OpIntArith, isa.FnADDQ, "addq"}, {isa.OpIntArith, isa.FnSUBQ, "subq"},
	{isa.OpIntArith, isa.FnCMPEQ, "cmpeq"}, {isa.OpIntArith, isa.FnCMPLT, "cmplt"},
	{isa.OpIntArith, isa.FnCMPLE, "cmple"}, {isa.OpIntArith, isa.FnCMPULT, "cmpult"},
	{isa.OpIntArith, isa.FnCMPULE, "cmpule"},
	{isa.OpIntLogic, isa.FnAND, "and"}, {isa.OpIntLogic, isa.FnBIC, "bic"},
	{isa.OpIntLogic, isa.FnBIS, "bis"}, {isa.OpIntLogic, isa.FnORNOT, "ornot"},
	{isa.OpIntLogic, isa.FnXOR, "xor"}, {isa.OpIntLogic, isa.FnEQV, "eqv"},
	{isa.OpIntMul, isa.FnMULQ, "mulq"},
}

func (g *generator) aluReg() Unit {
	f := intALU[g.rng.Intn(len(intALU))]
	ra, rb, rc := g.reg(), g.reg(), g.reg()
	return Unit{
		Desc: fmt.Sprintf("%s r%d, r%d, r%d", f.mn, ra, rb, rc),
		emit: func(b *asm.Builder) { b.Op(f.op, f.fn, ra, rb, rc) },
	}
}

var intALULit = []struct {
	op isa.Opcode
	fn uint16
	mn string
}{
	{isa.OpIntArith, isa.FnADDQ, "addq"}, {isa.OpIntArith, isa.FnSUBQ, "subq"},
	{isa.OpIntLogic, isa.FnAND, "and"}, {isa.OpIntLogic, isa.FnBIS, "bis"},
	{isa.OpIntLogic, isa.FnXOR, "xor"},
	{isa.OpIntShift, isa.FnSLL, "sll"}, {isa.OpIntShift, isa.FnSRL, "srl"},
	{isa.OpIntShift, isa.FnSRA, "sra"},
}

func (g *generator) aluLit() Unit {
	f := intALULit[g.rng.Intn(len(intALULit))]
	ra, rc := g.reg(), g.reg()
	lit := int64(g.rng.Intn(256))
	return Unit{
		Desc: fmt.Sprintf("%s r%d, #%d, r%d", f.mn, ra, lit, rc),
		emit: func(b *asm.Builder) { b.OpLit(f.op, f.fn, ra, lit, rc) },
	}
}

func (g *generator) loadImm() Unit {
	r := g.reg()
	var v int64
	switch g.rng.Intn(4) {
	case 0:
		v = g.rng.Int63n(256)
	case 1:
		v = -g.rng.Int63n(1 << 20)
	case 2:
		v = g.rng.Int63n(1<<40) - (1 << 39)
	default:
		v = int64(g.rng.Uint64())
	}
	return Unit{
		Desc: fmt.Sprintf("li r%d, %d", r, v),
		emit: func(b *asm.Builder) { b.LoadImm(r, v) },
	}
}

func (g *generator) memQuad() Unit {
	off := int32(g.rng.Intn(32)) * 8
	rs, rl := g.reg(), g.reg()
	return Unit{
		Desc: fmt.Sprintf("stq/ldq r%d -> r%d @iscratch+%d", rs, rl, off),
		emit: func(b *asm.Builder) {
			b.Mem(isa.OpSTQ, rs, intBase, off)
			b.Mem(isa.OpLDQ, rl, intBase, off)
		},
	}
}

func (g *generator) memByte() Unit {
	off := int32(g.rng.Intn(256))
	rs, rl := g.reg(), g.reg()
	return Unit{
		Desc: fmt.Sprintf("stb/ldbu r%d -> r%d @iscratch+%d", rs, rl, off),
		emit: func(b *asm.Builder) {
			b.Mem(isa.OpSTB, rs, intBase, off)
			b.Mem(isa.OpLDBU, rl, intBase, off)
		},
	}
}

// fpSeeds are the bit patterns fpInit materializes into FP registers:
// ordinary values, negatives, huge/tiny magnitudes and integral values
// (so CVTTQ/CVTQT and compares see varied inputs).
var fpSeeds = []float64{
	0.0, 1.0, -1.0, 2.5, -2.5, 0.5, 1e10, -1e-10, 3.14159265358979, 1e300, -7.0, 42.0,
}

func (g *generator) fpInit() Unit {
	f := g.freg()
	v := fpSeeds[g.rng.Intn(len(fpSeeds))]
	bits := int64(math.Float64bits(v))
	slot := int32(g.rng.Intn(32)) * 8
	return Unit{
		Desc: fmt.Sprintf("finit f%d = %g", f, v),
		emit: func(b *asm.Builder) {
			b.LoadImm(unitTmp, bits)
			b.Mem(isa.OpSTQ, unitTmp, fpBase, slot)
			b.Mem(isa.OpLDT, f, fpBase, slot)
		},
	}
}

var fpBinOps = []struct {
	fn uint16
	mn string
}{
	{isa.FnADDT, "addt"}, {isa.FnSUBT, "subt"}, {isa.FnMULT, "mult"},
	{isa.FnDIVT, "divt"}, {isa.FnCMPTEQ, "cmpteq"}, {isa.FnCMPTLT, "cmptlt"},
	{isa.FnCMPTLE, "cmptle"}, {isa.FnCPYS, "cpys"},
}

var fpUnaryOps = []struct {
	fn uint16
	mn string
}{
	{isa.FnSQRTT, "sqrtt"}, {isa.FnCVTTQ, "cvttq"}, {isa.FnCVTQT, "cvtqt"},
}

func (g *generator) fpOp() Unit {
	if g.rng.Intn(3) == 0 {
		f := fpUnaryOps[g.rng.Intn(len(fpUnaryOps))]
		fb, fc := g.freg(), g.freg()
		return Unit{
			Desc: fmt.Sprintf("%s f%d, f%d", f.mn, fb, fc),
			emit: func(b *asm.Builder) { b.FP(f.fn, isa.ZeroReg, fb, fc) },
		}
	}
	f := fpBinOps[g.rng.Intn(len(fpBinOps))]
	fa, fb, fc := g.freg(), g.freg(), g.freg()
	return Unit{
		Desc: fmt.Sprintf("%s f%d, f%d, f%d", f.mn, fa, fb, fc),
		emit: func(b *asm.Builder) { b.FP(f.fn, fa, fb, fc) },
	}
}

func (g *generator) fpMem() Unit {
	off := int32(g.rng.Intn(32)) * 8
	fs, fl := g.freg(), g.freg()
	return Unit{
		Desc: fmt.Sprintf("stt/ldt f%d -> f%d @fscratch+%d", fs, fl, off),
		emit: func(b *asm.Builder) {
			b.Mem(isa.OpSTT, fs, fpBase, off)
			b.Mem(isa.OpLDT, fl, fpBase, off)
		},
	}
}

var condBranches = []struct {
	op isa.Opcode
	mn string
}{
	{isa.OpBEQ, "beq"}, {isa.OpBNE, "bne"}, {isa.OpBLT, "blt"},
	{isa.OpBLE, "ble"}, {isa.OpBGE, "bge"}, {isa.OpBGT, "bgt"},
}

func (g *generator) fwdBranch(idx int) Unit {
	useFP := g.rng.Intn(4) == 0
	var op isa.Opcode
	var cond isa.Reg
	if useFP {
		op = [...]isa.Opcode{isa.OpFBEQ, isa.OpFBNE}[g.rng.Intn(2)]
		cond = g.freg()
	} else {
		c := condBranches[g.rng.Intn(len(condBranches))]
		op = c.op
		cond = g.reg()
	}
	skipped := []Unit{g.aluReg()}
	if g.rng.Intn(2) == 0 {
		skipped = append(skipped, g.aluLit())
	}
	label := fmt.Sprintf("u%d_skip", idx)
	return Unit{
		Desc: fmt.Sprintf("forward branch over %d insts", len(skipped)),
		emit: func(b *asm.Builder) {
			b.Br(op, cond, label)
			for i := range skipped {
				skipped[i].emit(b)
			}
			b.Label(label)
		},
	}
}

// loop emits a counter-bounded backward branch: the loop body runs a
// fixed 1..4 iterations regardless of pool register contents, so
// generated programs always terminate.
func (g *generator) loop(idx int) Unit {
	iters := int64(1 + g.rng.Intn(4))
	body := make([]Unit, 1+g.rng.Intn(3))
	for i := range body {
		if g.rng.Intn(2) == 0 {
			body[i] = g.aluReg()
		} else {
			body[i] = g.aluLit()
		}
	}
	label := fmt.Sprintf("u%d_loop", idx)
	return Unit{
		Desc: fmt.Sprintf("loop x%d, %d-inst body", iters, len(body)),
		emit: func(b *asm.Builder) {
			b.LoadImm(loopCtr, iters)
			b.Label(label)
			for i := range body {
				body[i].emit(b)
			}
			b.OpLit(isa.OpIntArith, isa.FnSUBQ, loopCtr, 1, loopCtr)
			b.Br(isa.OpBGT, loopCtr, label)
		},
	}
}

// call emits a BSR to a leaf function placed after the exit sequence; the
// function body is ALU/FP-only and returns through RA, exercising the
// predictor's call/return path.
func (g *generator) call(idx int) Unit {
	body := make([]Unit, 1+g.rng.Intn(3))
	for i := range body {
		switch g.rng.Intn(3) {
		case 0:
			body[i] = g.aluReg()
		case 1:
			body[i] = g.aluLit()
		default:
			body[i] = g.fpOp()
		}
	}
	fn := fmt.Sprintf("u%d_fn", idx)
	return Unit{
		Desc: fmt.Sprintf("call %s (%d-inst leaf)", fn, len(body)),
		emit: func(b *asm.Builder) { b.Br(isa.OpBSR, isa.RegRA, fn) },
		aux: func(b *asm.Builder) {
			b.Label(fn)
			for i := range body {
				body[i].emit(b)
			}
			b.Jump(isa.ZeroReg, isa.RegRA, isa.HintRET)
		},
	}
}

// jump emits a computed jump through a register to the next instruction,
// linking the return address into a pool register (JMP's only
// architectural effect besides the redirect).
func (g *generator) jump(idx int) Unit {
	link := g.reg()
	label := fmt.Sprintf("u%d_jt", idx)
	return Unit{
		Desc: fmt.Sprintf("computed jmp, link r%d", link),
		emit: func(b *asm.Builder) {
			b.LA(addrTmp, label)
			b.Jump(link, addrTmp, isa.HintJMP)
			b.Label(label)
		},
	}
}

// divMod emits DIVQ/REMQ with a divisor forced odd (hence nonzero), so
// arithmetic traps cannot fire but the divide path is exercised.
func (g *generator) divMod() Unit {
	fn := isa.FnDIVQ
	mn := "divq"
	if g.rng.Intn(2) == 0 {
		fn = isa.FnREMQ
		mn = "remq"
	}
	ra, rb, rc := g.reg(), g.reg(), g.reg()
	return Unit{
		Desc: fmt.Sprintf("%s r%d, r%d|1, r%d", mn, ra, rb, rc),
		emit: func(b *asm.Builder) {
			b.OpLit(isa.OpIntLogic, isa.FnBIS, rb, 1, unitTmp)
			b.Op(isa.OpIntMul, fn, ra, unitTmp, rc)
		},
	}
}

// putc emits a console-write syscall: a PAL serialization point in the
// pipelined model and kernel console traffic for the output comparison.
func (g *generator) putc() Unit {
	ch := int64(33 + g.rng.Intn(94)) // printable ASCII
	return Unit{
		Desc: fmt.Sprintf("putc %q", rune(ch)),
		emit: func(b *asm.Builder) {
			b.LoadImm(isa.RegV0, int64(isa.SysPutc))
			b.LoadImm(isa.RegA0, ch)
			b.Pal(isa.PalCallSys)
		},
	}
}

func (g *generator) nop() Unit {
	return Unit{Desc: "nop", emit: func(b *asm.Builder) { b.Nop() }}
}
