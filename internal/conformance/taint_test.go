package conformance

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/taint"
	"repro/internal/workloads"
)

// taintConformanceFault is the injection used for cross-model verdict
// agreement: a commit-queue register fault. Commit-time faults are the
// right probe because the committed-instruction stream is architectural
// and identical on all three models; front-end stage faults on the
// pipelined model can legally strike speculative instructions the other
// models never see.
func taintConformanceFault() []core.Fault {
	return []core.Fault{{
		Loc: core.LocIntReg, Reg: 5, Behavior: core.BehFlip, Bit: 7,
		ThreadID: 0, Base: core.TimeInst, When: 50, Occ: 1,
	}}
}

// taintRun executes one workload with taint tracking and returns the
// propagation report.
func taintRun(t *testing.T, name string, model sim.ModelKind, faults []core.Fault, golden *taint.GoldenState) *taint.PropReport {
	t.Helper()
	w, err := workloads.ByName(name, workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sim.Config{
		Model: model, EnableFI: true, Faults: faults,
		EnableTaint: true, MaxInsts: 200_000_000,
	})
	if err := s.Load(prog); err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Hung || r.Interrupted {
		t.Fatalf("%s on %s: run did not finish: %+v", name, model, r)
	}
	return s.TaintReport(r.Failed(), golden)
}

// taintGolden captures the golden final state from one clean atomic run;
// the models are architecturally conformant (see the lockstep suite), so
// a single capture serves all three.
func taintGolden(t *testing.T, name string) *taint.GoldenState {
	t.Helper()
	w, err := workloads.ByName(name, workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sim.Config{Model: sim.ModelAtomic, EnableFI: true, MaxInsts: 200_000_000})
	if err := s.Load(prog); err != nil {
		t.Fatal(err)
	}
	if r := s.Run(); r.Failed() {
		t.Fatalf("%s: clean run failed: %+v", name, r)
	}
	return taint.CaptureGolden(&s.Core.Arch, s.Mem)
}

// TestTaintVerdictConformance injects the same commit-time register fault
// into each of the six paper workloads on all three CPU models and
// requires identical taint verdicts, tainted-instruction counts and peak
// taint widths — propagation tracking is architectural, so the models
// must tell the same story.
func TestTaintVerdictConformance(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			golden := taintGolden(t, name)
			models := DefaultModels()
			ref := taintRun(t, name, models[0], taintConformanceFault(), golden)
			if ref.Injections == 0 {
				t.Fatalf("%s: conformance fault never injected on %s", name, models[0])
			}
			t.Logf("%s: verdict=%s tainted=%d maxlive=%d", name, ref.Verdict, ref.TaintedInsts, ref.MaxLiveTaint)
			for _, m := range models[1:] {
				rep := taintRun(t, name, m, taintConformanceFault(), golden)
				if rep.Verdict != ref.Verdict {
					t.Errorf("%s: verdict on %s = %s, on %s = %s", name, m, rep.Verdict, models[0], ref.Verdict)
				}
				if rep.TaintedInsts != ref.TaintedInsts {
					t.Errorf("%s: tainted insts on %s = %d, on %s = %d", name, m, rep.TaintedInsts, models[0], ref.TaintedInsts)
				}
				if rep.MaxLiveTaint != ref.MaxLiveTaint {
					t.Errorf("%s: max live taint on %s = %d, on %s = %d", name, m, rep.MaxLiveTaint, models[0], ref.MaxLiveTaint)
				}
			}
		})
	}
}

// TestPipelinedSquashZeroResidual is the tracker-level invariant behind
// speculative injection: a fault marked on an in-flight instruction that
// is then squashed must vanish completely — no injection counted, no
// node created, no live taint, verdict not-injected.
func TestPipelinedSquashZeroResidual(t *testing.T) {
	tr := taint.New()
	tr.MarkPendingInjection(7, 0x1000, "speculative fetch fault")
	if tr.PendingInjections() != 1 {
		t.Fatalf("pending = %d, want 1", tr.PendingInjections())
	}
	tr.OnSquash(7)
	rep := tr.Report(false, nil, nil, nil)
	if rep.Verdict != taint.VerdictNotInjected {
		t.Errorf("verdict = %s, want %s", rep.Verdict, taint.VerdictNotInjected)
	}
	if rep.Injections != 0 || rep.SquashedInjections != 1 {
		t.Errorf("injections = %d squashed = %d, want 0/1", rep.Injections, rep.SquashedInjections)
	}
	if rep.LiveTaint != 0 || rep.PendingInjections != 0 || len(rep.Nodes) != 0 || len(rep.Edges) != 0 {
		t.Errorf("squash left residue: %+v", rep)
	}
}

// TestPipelinedSpeculativeTaintDrains runs every workload on the
// pipelined model with a front-end (fetch-stage) fault that can strike
// wrong-path instructions: at the end of the run no pending speculative
// injection may linger — each one either committed (and became a real
// injection) or was squashed and fully untainted.
func TestPipelinedSpeculativeTaintDrains(t *testing.T) {
	fault := []core.Fault{{
		Loc: core.LocFetch, Behavior: core.BehFlip, Bit: 9,
		ThreadID: 0, Base: core.TimeInst, When: 40, Occ: 1,
	}}
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rep := taintRun(t, name, sim.ModelPipelined, fault, nil)
			// A crash freezes the pipeline mid-flight, so a pending mark on
			// the not-yet-committed corrupted instruction is exactly the
			// evidence the reached-crash verdict runs on. On a clean exit
			// every speculative mark must have resolved.
			if !rep.Crashed && rep.PendingInjections != 0 {
				t.Errorf("%s: %d speculative injections never resolved (committed %d, squashed %d)",
					name, rep.PendingInjections, rep.Injections, rep.SquashedInjections)
			}
			if rep.Crashed && rep.Verdict != taint.VerdictReachedCrash && rep.PendingInjections+rep.Injections > 0 {
				t.Errorf("%s: crashed with injections but verdict %s", name, rep.Verdict)
			}
			if rep.Injections == 0 && rep.SquashedInjections == 0 && rep.PendingInjections == 0 && !rep.Crashed {
				t.Errorf("%s: fetch fault left no trace at all (did the fault fire?)", name)
			}
		})
	}
}
