package conformance

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// DefaultModels are the three CPU models checked by the harness.
func DefaultModels() []sim.ModelKind {
	return []sim.ModelKind{sim.ModelAtomic, sim.ModelTiming, sim.ModelPipelined}
}

// PerturbSpec deterministically corrupts one model's architectural state
// after a given number of committed instructions — the "intentionally
// broken model" used to validate that the harness actually catches
// divergences (and by the gemfi-fuzz -perturb flag to demo reports).
type PerturbSpec struct {
	Model sim.ModelKind
	After uint64 // commit count after which the corruption is applied once
	Reg   int    // integer register to corrupt
	Bit   int    // bit to flip
}

// Config parameterizes a lockstep run.
type Config struct {
	// Models to run in lockstep (default: atomic, timing, pipelined).
	// The first model is the comparison reference.
	Models []sim.ModelKind
	// SyncInterval compares architectural state every N committed
	// instructions in addition to program exit (0 = exit only).
	SyncInterval uint64
	// MaxSteps bounds each model's step count — cycles for the pipelined
	// model — so a divergent runaway loop is reported, not hung on
	// (default 4,000,000).
	MaxSteps uint64
	// TraceWindow is how many recently committed instructions each model
	// retains for the divergence report (default 16).
	TraceWindow int
	// Perturb, when non-nil, injects a synthetic model bug.
	Perturb *PerturbSpec
}

func (c Config) withDefaults() Config {
	if len(c.Models) == 0 {
		c.Models = DefaultModels()
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 4_000_000
	}
	if c.TraceWindow == 0 {
		c.TraceWindow = 16
	}
	return c
}

// TraceEntry is one committed instruction in a model's recent history.
type TraceEntry struct {
	N    uint64 // commit index (1-based)
	PC   uint64
	Word isa.Word
}

// traceRing retains the last N committed instructions.
type traceRing struct {
	buf  []TraceEntry
	next uint64 // total commits recorded
}

func newTraceRing(n int) *traceRing { return &traceRing{buf: make([]TraceEntry, 0, n)} }

func (r *traceRing) record(pc uint64, in isa.Inst) {
	r.next++
	e := TraceEntry{N: r.next, PC: pc, Word: in.Raw}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	copy(r.buf, r.buf[1:])
	r.buf[len(r.buf)-1] = e
}

// Entries returns the retained trace oldest-first.
func (r *traceRing) Entries() []TraceEntry { return r.buf }

// modelRun is one model's simulator plus its lockstep bookkeeping.
type modelRun struct {
	kind  sim.ModelKind
	sim   *sim.Simulator
	model cpu.Model
	trace *traceRing
	steps uint64
	hung  bool
}

// stepUntil advances the model until it stops or reaches target committed
// instructions; both models commit at most one instruction per step, so
// the loop lands exactly on the target.
func (r *modelRun) stepUntil(target, maxSteps uint64) {
	c := r.sim.Core
	for !c.Stopped && c.Insts < target {
		if r.steps >= maxSteps {
			r.hung = true
			return
		}
		r.steps++
		if !r.model.Step() {
			return
		}
	}
}

// perturbModel wraps a cpu.Model and flips one register bit once the
// commit count passes spec.After.
type perturbModel struct {
	cpu.Model
	core *cpu.Core
	spec PerturbSpec
	done bool
}

func (p *perturbModel) Step() bool {
	ok := p.Model.Step()
	if !p.done && p.core.Insts >= p.spec.After {
		p.core.Arch.R[p.spec.Reg&31] ^= 1 << (uint(p.spec.Bit) & 63)
		p.done = true
	}
	return ok
}

// RunLockstep runs prog on every configured model in lockstep and returns
// the first divergence found, or nil if all models agree bit-exactly on
// every sync point and on the final architectural state, memory image,
// console output, exit status and retired-instruction count.
func RunLockstep(prog *asm.Program, cfg Config) (*Divergence, error) {
	cfg = cfg.withDefaults()
	runs := make([]*modelRun, len(cfg.Models))
	for i, kind := range cfg.Models {
		s := sim.New(sim.Config{Model: kind})
		if err := s.Load(prog); err != nil {
			return nil, fmt.Errorf("conformance: load on %s: %w", kind, err)
		}
		r := &modelRun{kind: kind, sim: s, model: s.Model, trace: newTraceRing(cfg.TraceWindow)}
		s.Core.TraceFn = r.trace.record
		if cfg.Perturb != nil && cfg.Perturb.Model == kind {
			r.model = &perturbModel{Model: s.Model, core: s.Core, spec: *cfg.Perturb}
		}
		runs[i] = r
	}

	target := cfg.SyncInterval
	if cfg.SyncInterval == 0 {
		target = math.MaxUint64
	}
	for {
		for _, r := range runs {
			r.stepUntil(target, cfg.MaxSteps)
		}
		if d := checkHang(runs); d != nil {
			return d, nil
		}
		stopped := 0
		for _, r := range runs {
			if r.sim.Core.Stopped {
				stopped++
			}
		}
		if stopped == len(runs) {
			return compareFinal(runs), nil
		}
		if stopped > 0 {
			// Some models exited; the rest must stop at the same retired
			// count or they have diverged.
			var maxFinal uint64
			for _, r := range runs {
				if r.sim.Core.Stopped && r.sim.Core.Insts > maxFinal {
					maxFinal = r.sim.Core.Insts
				}
			}
			for _, r := range runs {
				if !r.sim.Core.Stopped {
					r.stepUntil(maxFinal+1, cfg.MaxSteps)
				}
			}
			if d := checkHang(runs); d != nil {
				return d, nil
			}
			return compareFinal(runs), nil
		}
		// All still running, all at exactly `target` commits.
		if d := compareSync(runs, target); d != nil {
			return d, nil
		}
		target += cfg.SyncInterval
	}
}

// checkHang reports a divergence if any model exhausted its step budget.
func checkHang(runs []*modelRun) *Divergence {
	ref := runs[0]
	for _, r := range runs[1:] {
		if r.hung != ref.hung {
			a, b := ref, r
			if a.hung {
				a, b = b, a
			}
			return newDivergence(a, b, "hang",
				fmt.Sprintf("%s exceeded its step budget at insts=%d while %s was at insts=%d",
					b.kind, b.sim.Core.Insts, a.kind, a.sim.Core.Insts))
		}
	}
	if ref.hung {
		return newDivergence(ref, ref, "hang",
			fmt.Sprintf("all models exceeded the step budget (insts=%d) — generated program did not terminate", ref.sim.Core.Insts))
	}
	return nil
}

// compareSync compares mid-run architectural state at a sync boundary.
// Memory is deliberately NOT compared here: the pipelined model performs
// stores in its MEM stage, before commit, so an in-flight store may have
// written memory the reference model has not reached yet.
func compareSync(runs []*modelRun, at uint64) *Divergence {
	ref := runs[0]
	for _, r := range runs[1:] {
		if d := compareArch(ref, r, at); d != nil {
			return d
		}
	}
	return nil
}

// compareArch compares the committed register state, PC and PCBB.
func compareArch(a, b *modelRun, at uint64) *Divergence {
	aa, ba := &a.sim.Core.Arch, &b.sim.Core.Arch
	for i := 0; i < isa.NumRegs; i++ {
		if aa.R[i] != ba.R[i] {
			return newDivergence(a, b, "register",
				fmt.Sprintf("R%d (%s): %s=%#x %s=%#x", i, isa.Reg(i), a.kind, aa.R[i], b.kind, ba.R[i])).at(at)
		}
	}
	for i := 0; i < isa.NumRegs; i++ {
		if math.Float64bits(aa.F[i]) != math.Float64bits(ba.F[i]) {
			return newDivergence(a, b, "fp-register",
				fmt.Sprintf("F%d: %s=%#x (%g) %s=%#x (%g)", i,
					a.kind, math.Float64bits(aa.F[i]), aa.F[i],
					b.kind, math.Float64bits(ba.F[i]), ba.F[i])).at(at)
		}
	}
	if aa.PC != ba.PC {
		return newDivergence(a, b, "pc",
			fmt.Sprintf("PC: %s=%#x %s=%#x", a.kind, aa.PC, b.kind, ba.PC)).at(at)
	}
	if aa.PCBB != ba.PCBB {
		return newDivergence(a, b, "pcbb",
			fmt.Sprintf("PCBB: %s=%#x %s=%#x", a.kind, aa.PCBB, b.kind, ba.PCBB)).at(at)
	}
	return nil
}

// compareFinal compares complete end-of-run state. After a trap only the
// trap kind and retired count are compared (a trapping store in the
// pipelined MEM stage may have reached memory before the squash).
func compareFinal(runs []*modelRun) *Divergence {
	ref := runs[0]
	for _, r := range runs[1:] {
		ca, cb := ref.sim.Core, r.sim.Core
		if ca.Insts != cb.Insts {
			return newDivergence(ref, r, "retired",
				fmt.Sprintf("retired instructions: %s=%d %s=%d", ref.kind, ca.Insts, r.kind, cb.Insts))
		}
		ta, tb := trapKind(ca), trapKind(cb)
		if ta != tb {
			return newDivergence(ref, r, "trap",
				fmt.Sprintf("trap: %s=%q %s=%q", ref.kind, ta, r.kind, tb))
		}
		if ta != "" {
			continue
		}
		if ca.ExitStatus != cb.ExitStatus {
			return newDivergence(ref, r, "exit",
				fmt.Sprintf("exit status: %s=%d %s=%d", ref.kind, ca.ExitStatus, r.kind, cb.ExitStatus))
		}
		if d := compareArch(ref, r, ca.Insts); d != nil {
			return d
		}
		if consA, consB := ref.sim.Kernel.Console(), r.sim.Kernel.Console(); consA != consB {
			return newDivergence(ref, r, "console",
				fmt.Sprintf("console: %s=%q %s=%q", ref.kind, consA, r.kind, consB))
		}
		if addr, va, vb, ok := diffMem(ref.sim.Mem.Snapshot(), r.sim.Mem.Snapshot()); ok {
			return newDivergence(ref, r, "memory",
				fmt.Sprintf("memory @%#x: %s=%#02x %s=%#02x", addr, ref.kind, va, r.kind, vb))
		}
	}
	return nil
}

func trapKind(c *cpu.Core) string {
	if c.Trap == nil {
		return ""
	}
	return c.Trap.Kind.String()
}

// diffMem finds the first differing byte between two memory snapshots.
// Pages absent from one snapshot compare as zero: speculative execution
// legitimately touches (and thus allocates) pages the functional model
// never reads.
func diffMem(a, b mem.Snapshot) (addr uint64, va, vb byte, diff bool) {
	bases := make(map[uint64]struct{}, len(a.Pages)+len(b.Pages))
	for base := range a.Pages {
		bases[base] = struct{}{}
	}
	for base := range b.Pages {
		bases[base] = struct{}{}
	}
	sorted := make([]uint64, 0, len(bases))
	for base := range bases {
		sorted = append(sorted, base)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, base := range sorted {
		pa, pb := a.Pages[base], b.Pages[base]
		for i := 0; i < mem.PageSize; i++ {
			var x, y byte
			if pa != nil {
				x = pa[i]
			}
			if pb != nil {
				y = pb[i]
			}
			if x != y {
				return base + uint64(i), x, y, true
			}
		}
	}
	return 0, 0, 0, false
}
