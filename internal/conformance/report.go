package conformance

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Divergence describes the first observed disagreement between two CPU
// models running the same program, with enough context (recent committed
// traces on both sides) to localize the model bug.
type Divergence struct {
	ModelA, ModelB string // model names; A is the comparison reference
	Kind           string // register, fp-register, pc, pcbb, memory, exit, trap, retired, console, hang
	AtInsts        uint64 // committed-instruction count at detection (0 = end of run)
	Detail         string
	TraceA, TraceB []TraceEntry // recent commits, oldest first
}

func newDivergence(a, b *modelRun, kind, detail string) *Divergence {
	return &Divergence{
		ModelA: string(a.kind),
		ModelB: string(b.kind),
		Kind:   kind,
		Detail: detail,
		TraceA: append([]TraceEntry(nil), a.trace.Entries()...),
		TraceB: append([]TraceEntry(nil), b.trace.Entries()...),
	}
}

func (d *Divergence) at(insts uint64) *Divergence {
	d.AtInsts = insts
	return d
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("conformance: %s vs %s diverged (%s): %s", d.ModelA, d.ModelB, d.Kind, d.Detail)
}

// Report renders a human-readable divergence report: the mismatch, then a
// side-by-side diff of the two models' recently committed instructions,
// disassembled, with `!` marking rows where the models disagree.
func (d *Divergence) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DIVERGENCE [%s] %s vs %s\n", d.Kind, d.ModelA, d.ModelB)
	if d.AtInsts > 0 {
		fmt.Fprintf(&sb, "  at %d committed instructions\n", d.AtInsts)
	}
	fmt.Fprintf(&sb, "  %s\n", d.Detail)
	n := len(d.TraceA)
	if len(d.TraceB) > n {
		n = len(d.TraceB)
	}
	if n == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "  last committed instructions (%s | %s):\n", d.ModelA, d.ModelB)
	for i := 0; i < n; i++ {
		left, right := traceCol(d.TraceA, i), traceCol(d.TraceB, i)
		mark := " "
		if left != right {
			mark = "!"
		}
		fmt.Fprintf(&sb, "  %s %-44s | %s\n", mark, left, right)
	}
	return sb.String()
}

func traceCol(t []TraceEntry, i int) string {
	if i >= len(t) {
		return ""
	}
	e := t[i]
	return fmt.Sprintf("#%-6d %08x: %s", e.N, e.PC, isa.Decode(e.Word).Disassemble(0))
}

// Listing disassembles a built program's text section, one instruction
// per line, for inclusion in reproducer reports.
func Listing(prog *asm.Program) string {
	var sb strings.Builder
	for i, w := range prog.Text {
		pc := prog.TextBase + uint64(i)*4
		fmt.Fprintf(&sb, "%08x: %08x  %s\n", pc, uint32(w), isa.Decode(w).Disassemble(0))
	}
	return sb.String()
}
