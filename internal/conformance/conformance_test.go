package conformance

import (
	"bytes"
	"flag"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// -fuzzseed runs the lockstep fuzz test on one specific seed (reproducing
// a reported failure); -fuzzn widens the fixed-seed sweep.
var (
	fuzzSeed = flag.Int64("fuzzseed", -1, "run lockstep fuzzing with this single seed")
	fuzzN    = flag.Int("fuzzn", 40, "number of fixed seeds for lockstep fuzzing")
)

func fuzzSeeds() []int64 {
	if *fuzzSeed >= 0 {
		return []int64{*fuzzSeed}
	}
	seeds := make([]int64, *fuzzN)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	return seeds
}

func TestLockstepRandomPrograms(t *testing.T) {
	for _, seed := range fuzzSeeds() {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			p := Generate(seed, GenConfig{})
			prog, err := p.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			d, err := RunLockstep(prog, Config{SyncInterval: 32})
			if err != nil {
				t.Fatalf("lockstep: %v", err)
			}
			if d != nil {
				t.Fatalf("models diverged (reproduce with -fuzzseed %d):\n%s\nprogram:\n%s",
					seed, d.Report(), Listing(prog))
			}
		})
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a, b := Generate(3, GenConfig{}), Generate(3, GenConfig{})
	if len(a.Units) != len(b.Units) {
		t.Fatalf("unit counts differ: %d vs %d", len(a.Units), len(b.Units))
	}
	for i := range a.Units {
		if a.Units[i].Desc != b.Units[i].Desc {
			t.Fatalf("unit %d differs: %q vs %q", i, a.Units[i].Desc, b.Units[i].Desc)
		}
	}
	pa, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pa.Text, pb.Text) {
		t.Fatal("same seed produced different code")
	}
}

// A perturbed model must be caught by the harness and shrink to a
// reproducer of at most 10 instructions (the corrupted register is the
// scratch base, so even the empty-body program still exposes it).
func TestPerturbedModelIsCaughtAndShrunk(t *testing.T) {
	cfg := Config{
		SyncInterval: 8,
		Perturb:      &PerturbSpec{Model: sim.ModelPipelined, After: 2, Reg: 9, Bit: 17},
	}
	p := Generate(11, GenConfig{Units: 40})

	prog, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if d, err := RunLockstep(prog, Config{SyncInterval: 8}); err != nil || d != nil {
		t.Fatalf("unperturbed baseline must be clean, got d=%v err=%v", d, err)
	}

	d, err := RunLockstep(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("perturbed pipelined model was not detected")
	}
	if d.Kind != "register" {
		t.Errorf("divergence kind = %q, want register", d.Kind)
	}
	if !strings.Contains(d.Report(), "DIVERGENCE") {
		t.Errorf("report missing header:\n%s", d.Report())
	}

	min, md := MinimizeDivergence(p, cfg)
	if min == nil || md == nil {
		t.Fatal("minimization lost the divergence")
	}
	minProg, err := min.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Units) != 0 {
		t.Errorf("shrunk program still has %d units, want 0", len(min.Units))
	}
	if len(minProg.Text) > 10 {
		t.Errorf("shrunk reproducer has %d instructions, want <= 10:\n%s",
			len(minProg.Text), Listing(minProg))
	}
}

// Shrink must find the single offending unit regardless of where it sits.
func TestShrinkIsolatesOffendingUnit(t *testing.T) {
	p := Generate(5, GenConfig{Units: 60})
	needle := p.Units[37].Desc
	count := 0
	for _, u := range p.Units {
		if u.Desc == needle {
			count++
		}
	}
	fails := func(q *Program) bool {
		n := 0
		for _, u := range q.Units {
			if u.Desc == needle {
				n++
			}
		}
		return n == count // "fails" while every copy of the needle survives
	}
	min := Shrink(p, fails)
	if len(min.Units) != count {
		t.Fatalf("shrunk to %d units, want %d (%q)", len(min.Units), count, needle)
	}
	for _, u := range min.Units {
		if u.Desc != needle {
			t.Fatalf("kept non-needle unit %q", u.Desc)
		}
	}
}

func TestTraceEncodeParseRoundTrip(t *testing.T) {
	orig := &Trace{
		Workload:   "pi",
		Scale:      "test",
		Model:      sim.ModelAtomic,
		Interval:   1000,
		Insts:      123456,
		ExitStatus: 0,
		ConsoleFNV: 0xdeadbeefcafef00d,
		ArchFNV:    0x0123456789abcdef,
		MemFNV:     0xfedcba9876543210,
		Windows:    []uint64{1, 0xffffffffffffffff, 42},
		Final:      0x1122334455667788,
	}
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip changed trace:\nwant %+v\ngot  %+v", orig, got)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"not a trace\n",
		"gemfi-trace v1\nbogus-key 12\n",
		"gemfi-trace v1\ninterval 100\n", // missing workload
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}
