package conformance

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// These tests pin the hot-path optimizations (decoded-instruction caches,
// memory TLB fast path, atomic fast step, fast-forward campaigns) to the
// fully-hooked slow path: same workloads, same config, one run with the
// fast machinery and one with Config.DisableFastPath, compared bit for
// bit. Any divergence is an optimization bug by definition.

// runWorkload runs w to completion on model and returns the simulator.
func runWorkload(t *testing.T, w *workloads.Workload, cfg sim.Config) *sim.Simulator {
	t.Helper()
	p, err := w.Build()
	if err != nil {
		t.Fatalf("%s: build: %v", w.Name, err)
	}
	s := sim.New(cfg)
	if err := s.Load(p); err != nil {
		t.Fatalf("%s: load: %v", w.Name, err)
	}
	r := s.Run()
	if r.Hung || r.Interrupted {
		t.Fatalf("%s: did not finish: %+v", w.Name, r)
	}
	return s
}

// compareMachines asserts two finished simulators reached bit-identical
// architectural end states.
func compareMachines(t *testing.T, label string, a, b *sim.Simulator) {
	t.Helper()
	if a.Core.Arch != b.Core.Arch {
		t.Errorf("%s: architectural state diverged", label)
	}
	if a.Core.Insts != b.Core.Insts || a.Core.Ticks != b.Core.Ticks {
		t.Errorf("%s: counters diverged: insts %d vs %d, ticks %d vs %d",
			label, a.Core.Insts, b.Core.Insts, a.Core.Ticks, b.Core.Ticks)
	}
	if a.Core.ExitStatus != b.Core.ExitStatus {
		t.Errorf("%s: exit status %d vs %d", label, a.Core.ExitStatus, b.Core.ExitStatus)
	}
	if ca, cb := a.Kernel.Console(), b.Kernel.Console(); ca != cb {
		t.Errorf("%s: console output diverged: %q vs %q", label, ca, cb)
	}
	if _, total := mem.DiffSnapshots(a.Mem.Snapshot(), b.Mem.Snapshot(), 4); total != 0 {
		t.Errorf("%s: %d bytes of memory diverged", label, total)
	}
}

// TestFastPathArchIdentity runs the paper's six workloads on every CPU
// model with the fast paths on (the default) and off, with the fault
// engine attached but idle — the campaign-realistic configuration. The
// pure no-hook run exercises the atomic fast step, both decode caches
// and the memory TLB; the end states must be indistinguishable.
func TestFastPathArchIdentity(t *testing.T) {
	for _, w := range workloads.All(workloads.ScaleTest) {
		for _, model := range []sim.ModelKind{sim.ModelAtomic, sim.ModelTiming, sim.ModelPipelined} {
			label := fmt.Sprintf("%s/%s", w.Name, model)
			fast := runWorkload(t, w, sim.Config{Model: model, EnableFI: true, MaxInsts: 200_000_000})
			slow := runWorkload(t, w, sim.Config{Model: model, EnableFI: true, MaxInsts: 200_000_000,
				DisableFastPath: true})
			compareMachines(t, label, fast, slow)
		}
	}
}

// traceHash folds the committed (pc, raw word) stream into a hash plus a
// count — a whole-run golden trace in O(1) memory.
type traceHash struct {
	n uint64
	h uint64
}

func (th *traceHash) fn(pc uint64, in isa.Inst) {
	h := fnv.New64a()
	var buf [12]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(pc >> (8 * uint(i)))
	}
	for i := 0; i < 4; i++ {
		buf[8+i] = byte(uint32(in.Raw) >> (8 * uint(i)))
	}
	h.Write(buf[:])
	th.n++
	th.h = th.h*0x100000001b3 ^ h.Sum64()
}

// TestFastPathTraceAndProfileIdentity attaches the execution tracer and
// the per-PC profiler — hook configurations that take the slow step but
// still ride the decode caches and memory fast path — and demands
// identical golden traces and identical per-PC profiles (instructions,
// cycles, misses, mispredicts, stalls) with the caches on and off.
func TestFastPathTraceAndProfileIdentity(t *testing.T) {
	for _, w := range workloads.All(workloads.ScaleTest) {
		for _, model := range []sim.ModelKind{sim.ModelAtomic, sim.ModelPipelined} {
			label := fmt.Sprintf("%s/%s", w.Name, model)
			run := func(disable bool) (*sim.Simulator, *traceHash) {
				th := &traceHash{}
				s := sim.New(sim.Config{Model: model, EnableFI: true, MaxInsts: 200_000_000,
					EnableProfiler: true, DisableFastPath: disable})
				p, err := w.Build()
				if err != nil {
					t.Fatalf("%s: build: %v", label, err)
				}
				if err := s.Load(p); err != nil {
					t.Fatalf("%s: load: %v", label, err)
				}
				s.Core.TraceFn = th.fn
				if r := s.Run(); r.Hung || r.Interrupted {
					t.Fatalf("%s: did not finish: %+v", label, r)
				}
				return s, th
			}
			fast, fastTrace := run(false)
			slow, slowTrace := run(true)
			compareMachines(t, label, fast, slow)
			if *fastTrace != *slowTrace {
				t.Errorf("%s: golden trace diverged: %d/%x vs %d/%x",
					label, fastTrace.n, fastTrace.h, slowTrace.n, slowTrace.h)
			}
			fp, sp := fast.Profiler().Snapshot(), slow.Profiler().Snapshot()
			if fp.TotalInsts != sp.TotalInsts || fp.TotalCycles != sp.TotalCycles {
				t.Errorf("%s: profile totals diverged: %d/%d vs %d/%d",
					label, fp.TotalInsts, fp.TotalCycles, sp.TotalInsts, sp.TotalCycles)
			}
			if !reflect.DeepEqual(fp.PCs, sp.PCs) {
				t.Errorf("%s: per-PC profile diverged (%d vs %d rows)", label, len(fp.PCs), len(sp.PCs))
			}
		}
	}
}

// TestFastForwardGoldenIdentity runs a fault-free pipelined simulation
// with and without the fast-forward prefix. The prefix runs on the
// atomic model, so cycle counts legitimately differ; everything
// architectural — registers, memory, console, committed instructions,
// golden trace — must not.
func TestFastForwardGoldenIdentity(t *testing.T) {
	for _, w := range workloads.All(workloads.ScaleTest) {
		run := func(ff bool) (*sim.Simulator, *traceHash) {
			th := &traceHash{}
			s := sim.New(sim.Config{Model: sim.ModelPipelined, EnableFI: true,
				MaxInsts: 200_000_000, FastForward: ff})
			p, err := w.Build()
			if err != nil {
				t.Fatalf("%s: build: %v", w.Name, err)
			}
			if err := s.Load(p); err != nil {
				t.Fatalf("%s: load: %v", w.Name, err)
			}
			s.Core.TraceFn = th.fn
			if r := s.Run(); r.Hung || r.Interrupted {
				t.Fatalf("%s ff=%v: did not finish: %+v", w.Name, ff, r)
			}
			return s, th
		}
		ff, ffTrace := run(true)
		ref, refTrace := run(false)
		if ff.Core.Arch != ref.Core.Arch {
			t.Errorf("%s: fast-forward diverged architectural state", w.Name)
		}
		if ff.Core.Insts != ref.Core.Insts {
			t.Errorf("%s: committed insts %d vs %d", w.Name, ff.Core.Insts, ref.Core.Insts)
		}
		if ff.Kernel.Console() != ref.Kernel.Console() {
			t.Errorf("%s: console diverged", w.Name)
		}
		if _, total := mem.DiffSnapshots(ff.Mem.Snapshot(), ref.Mem.Snapshot(), 4); total != 0 {
			t.Errorf("%s: %d bytes of memory diverged", w.Name, total)
		}
		if *ffTrace != *refTrace {
			t.Errorf("%s: golden trace diverged under fast-forward", w.Name)
		}
		if ff.WindowOpenInsts == 0 {
			t.Errorf("%s: fast-forward run never recorded the window opening", w.Name)
		}
	}
}

// TestFastForwardCampaignVerdictIdentity runs the same experiments
// through checkpointed campaign runners with and without fast-forward
// (pipelined model, the paper's methodology) and requires identical
// outcome classifications, fired flags and injection PCs per experiment.
func TestFastForwardCampaignVerdictIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign pair per workload is slow")
	}
	for _, w := range workloads.All(workloads.ScaleTest) {
		newRunner := func(ff bool) *campaign.Runner {
			cfg := sim.DefaultConfig()
			cfg.FastForward = ff
			r, err := campaign.NewRunner(w, campaign.RunnerOptions{Cfg: &cfg})
			if err != nil {
				t.Fatalf("%s: runner: %v", w.Name, err)
			}
			return r
		}
		ff := newRunner(true)
		ref := newRunner(false)
		if ff.WindowInsts != ref.WindowInsts {
			t.Fatalf("%s: golden windows differ: %d vs %d", w.Name, ff.WindowInsts, ref.WindowInsts)
		}
		exps := campaign.GenerateUniform(6, campaign.GenConfig{WindowInsts: ref.WindowInsts, Seed: 42})
		for _, e := range exps {
			got := ff.Run(e)
			want := ref.Run(e)
			if got.Outcome != want.Outcome || got.Fired != want.Fired {
				t.Errorf("%s exp %d (%s): fast-forward %v/fired=%v, reference %v/fired=%v",
					w.Name, e.ID, e.Faults[0], got.Outcome, got.Fired, want.Outcome, want.Fired)
			}
			if got.InjPCValid != want.InjPCValid || got.InjPC != want.InjPC {
				t.Errorf("%s exp %d: injection PC diverged: %#x/%v vs %#x/%v",
					w.Name, e.ID, got.InjPC, got.InjPCValid, want.InjPC, want.InjPCValid)
			}
		}
	}
}
