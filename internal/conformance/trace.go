package conformance

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Trace is a golden commit trace for one workload on one CPU model: a
// chained FNV-1a digest over every committed (pc, instruction) pair,
// sampled every Interval commits, plus end-of-run summary digests. A
// stored trace pins the exact committed instruction stream — any semantic
// change to the ISA, assembler, kernel or CPU model moves at least one
// digest, and the first moved window localizes the regression.
type Trace struct {
	Workload string
	Scale    string // test | small | paper
	Model    sim.ModelKind
	Interval uint64 // commits per digest window

	Insts      uint64   // total committed instructions
	ExitStatus int      //
	ConsoleFNV uint64   // digest of console output
	ArchFNV    uint64   // digest of final R/F/PC state
	MemFNV     uint64   // digest of final memory image (nonzero pages)
	Windows    []uint64 // chained digest after each Interval commits
	Final      uint64   // chained digest after the last commit
}

// FNV-1a, 64-bit.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*uint(i))))
	}
	return h
}

func fnvString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// ParseScale maps a trace-file scale name to a workload scale.
func ParseScale(s string) (workloads.Scale, error) {
	switch s {
	case "test":
		return workloads.ScaleTest, nil
	case "small":
		return workloads.ScaleSmall, nil
	case "paper":
		return workloads.ScalePaper, nil
	}
	return 0, fmt.Errorf("conformance: unknown scale %q", s)
}

// Capture runs the named workload fault-free and records its golden trace.
func Capture(name, scale string, model sim.ModelKind, interval uint64) (*Trace, error) {
	if interval == 0 {
		return nil, fmt.Errorf("conformance: capture interval must be positive")
	}
	sc, err := ParseScale(scale)
	if err != nil {
		return nil, err
	}
	w, err := workloads.ByName(name, sc)
	if err != nil {
		return nil, err
	}
	prog, err := w.Build()
	if err != nil {
		return nil, err
	}
	// EnableFI with no faults: the workloads issue fi_* PAL calls, and this
	// matches the configuration golden-run classification uses.
	s := sim.New(sim.Config{Model: model, EnableFI: true, MaxInsts: 2_000_000_000})
	if err := s.Load(prog); err != nil {
		return nil, err
	}
	t := &Trace{Workload: name, Scale: scale, Model: model, Interval: interval}
	h := uint64(fnvOffset)
	var commits uint64
	s.Core.TraceFn = func(pc uint64, in isa.Inst) {
		h = fnvU64(h, pc)
		h = fnvU64(h, uint64(uint32(in.Raw)))
		commits++
		if commits%interval == 0 {
			t.Windows = append(t.Windows, h)
		}
	}
	r := s.Run()
	if r.Crashed || r.Hung {
		return nil, fmt.Errorf("conformance: golden run of %s failed: crashed=%v hung=%v cause=%s",
			name, r.Crashed, r.Hung, r.CrashCause)
	}
	t.Insts = s.Core.Insts
	t.ExitStatus = r.ExitStatus
	t.Final = h
	t.ConsoleFNV = fnvString(r.Console)
	t.ArchFNV = archDigest(s)
	t.MemFNV = memDigest(s)
	return t, nil
}

func archDigest(s *sim.Simulator) uint64 {
	h := uint64(fnvOffset)
	a := &s.Core.Arch
	for i := 0; i < isa.NumRegs; i++ {
		h = fnvU64(h, a.R[i])
	}
	for i := 0; i < isa.NumRegs; i++ {
		h = fnvU64(h, floatBits(a.F[i]))
	}
	h = fnvU64(h, a.PC)
	return h
}

// memDigest hashes the final memory image. All-zero pages are skipped so
// the digest is insensitive to which pages were merely allocated.
func memDigest(s *sim.Simulator) uint64 {
	snap := s.Mem.Snapshot()
	bases := make([]uint64, 0, len(snap.Pages))
	for base, pg := range snap.Pages {
		if allZero(pg) {
			continue
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	h := uint64(fnvOffset)
	for _, base := range bases {
		h = fnvU64(h, base)
		for _, b := range snap.Pages[base] {
			h = fnvByte(h, b)
		}
	}
	return h
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func parseHex(s string) (uint64, error) {
	s = strings.TrimPrefix(s, "0x")
	return strconv.ParseUint(s, 16, 64)
}

func allZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// Verify re-runs the workload and compares against the stored trace,
// returning an error naming the first divergent digest window.
func (t *Trace) Verify() error {
	got, err := Capture(t.Workload, t.Scale, t.Model, t.Interval)
	if err != nil {
		return err
	}
	for i := range t.Windows {
		if i >= len(got.Windows) || got.Windows[i] != t.Windows[i] {
			lo, hi := uint64(i)*t.Interval+1, uint64(i+1)*t.Interval
			return fmt.Errorf("%s/%s/%s: commit trace diverged in window %d (commits %d..%d): want %#016x, got %v",
				t.Workload, t.Scale, t.Model, i, lo, hi, t.Windows[i], windowOr(got.Windows, i))
		}
	}
	switch {
	case len(got.Windows) != len(t.Windows):
		return fmt.Errorf("%s/%s/%s: %d digest windows, want %d", t.Workload, t.Scale, t.Model, len(got.Windows), len(t.Windows))
	case got.Final != t.Final:
		return fmt.Errorf("%s/%s/%s: final trace digest %#016x, want %#016x", t.Workload, t.Scale, t.Model, got.Final, t.Final)
	case got.Insts != t.Insts:
		return fmt.Errorf("%s/%s/%s: retired %d instructions, want %d", t.Workload, t.Scale, t.Model, got.Insts, t.Insts)
	case got.ExitStatus != t.ExitStatus:
		return fmt.Errorf("%s/%s/%s: exit status %d, want %d", t.Workload, t.Scale, t.Model, got.ExitStatus, t.ExitStatus)
	case got.ConsoleFNV != t.ConsoleFNV:
		return fmt.Errorf("%s/%s/%s: console digest %#016x, want %#016x", t.Workload, t.Scale, t.Model, got.ConsoleFNV, t.ConsoleFNV)
	case got.ArchFNV != t.ArchFNV:
		return fmt.Errorf("%s/%s/%s: final architectural state digest %#016x, want %#016x", t.Workload, t.Scale, t.Model, got.ArchFNV, t.ArchFNV)
	case got.MemFNV != t.MemFNV:
		return fmt.Errorf("%s/%s/%s: final memory digest %#016x, want %#016x", t.Workload, t.Scale, t.Model, got.MemFNV, t.MemFNV)
	}
	return nil
}

func windowOr(ws []uint64, i int) string {
	if i >= len(ws) {
		return "missing (run ended early)"
	}
	return fmt.Sprintf("%#016x", ws[i])
}

// Encode writes the trace in its stable text form.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "gemfi-trace v1")
	fmt.Fprintf(bw, "workload %s\n", t.Workload)
	fmt.Fprintf(bw, "scale %s\n", t.Scale)
	fmt.Fprintf(bw, "model %s\n", t.Model)
	fmt.Fprintf(bw, "interval %d\n", t.Interval)
	fmt.Fprintf(bw, "insts %d\n", t.Insts)
	fmt.Fprintf(bw, "exit %d\n", t.ExitStatus)
	fmt.Fprintf(bw, "console-fnv %#016x\n", t.ConsoleFNV)
	fmt.Fprintf(bw, "arch-fnv %#016x\n", t.ArchFNV)
	fmt.Fprintf(bw, "mem-fnv %#016x\n", t.MemFNV)
	for _, d := range t.Windows {
		fmt.Fprintf(bw, "digest %#016x\n", d)
	}
	fmt.Fprintf(bw, "final %#016x\n", t.Final)
	return bw.Flush()
}

// Parse reads a trace in the format written by Encode.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "gemfi-trace v1" {
		return nil, fmt.Errorf("conformance: not a gemfi-trace v1 file")
	}
	t := &Trace{}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		key, val, ok := strings.Cut(text, " ")
		if !ok {
			return nil, fmt.Errorf("conformance: trace line %d: malformed %q", line, text)
		}
		var err error
		switch key {
		case "workload":
			t.Workload = val
		case "scale":
			t.Scale = val
		case "model":
			t.Model = sim.ModelKind(val)
		case "interval":
			t.Interval, err = strconv.ParseUint(val, 10, 64)
		case "insts":
			t.Insts, err = strconv.ParseUint(val, 10, 64)
		case "exit":
			t.ExitStatus, err = strconv.Atoi(val)
		case "console-fnv":
			t.ConsoleFNV, err = parseHex(val)
		case "arch-fnv":
			t.ArchFNV, err = parseHex(val)
		case "mem-fnv":
			t.MemFNV, err = parseHex(val)
		case "digest":
			var d uint64
			if d, err = parseHex(val); err == nil {
				t.Windows = append(t.Windows, d)
			}
		case "final":
			t.Final, err = parseHex(val)
		default:
			return nil, fmt.Errorf("conformance: trace line %d: unknown key %q", line, key)
		}
		if err != nil {
			return nil, fmt.Errorf("conformance: trace line %d: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.Workload == "" || t.Interval == 0 {
		return nil, fmt.Errorf("conformance: trace missing workload or interval header")
	}
	return t, nil
}

// ParseFile reads a trace fixture from disk.
func ParseFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
