package conformance

// Shrink greedily minimizes a failing program using ddmin-style chunk
// deletion over generator units: it repeatedly tries to delete runs of
// units, keeping any deletion after which stillFails still reports a
// divergence. Unit labels are keyed to the unit's original index, so the
// surviving units always rebuild into a valid program.
func Shrink(p *Program, stillFails func(*Program) bool) *Program {
	cur := p
	chunk := len(cur.Units) / 2
	if chunk < 1 {
		chunk = 1
	}
	for chunk >= 1 {
		removedAny := false
		for start := 0; start < len(cur.Units); {
			end := start + chunk
			if end > len(cur.Units) {
				end = len(cur.Units)
			}
			cand := cur.without(start, end)
			if len(cand.Units) < len(cur.Units) && stillFails(cand) {
				cur = cand
				removedAny = true
				// Do not advance: the next chunk slid into this position.
			} else {
				start = end
			}
		}
		if !removedAny {
			chunk /= 2
		}
	}
	return cur
}

// MinimizeDivergence re-runs p under cfg to confirm it diverges, then
// shrinks it to a minimal reproducer. Returns the minimized program and
// the divergence it still exhibits (nil, nil if p does not diverge).
func MinimizeDivergence(p *Program, cfg Config) (*Program, *Divergence) {
	fails := func(q *Program) bool {
		prog, err := q.Build()
		if err != nil {
			return false
		}
		d, err := RunLockstep(prog, cfg)
		return err == nil && d != nil
	}
	if !fails(p) {
		return nil, nil
	}
	min := Shrink(p, fails)
	prog, err := min.Build()
	if err != nil {
		return min, nil
	}
	d, _ := RunLockstep(prog, cfg)
	return min, d
}
