package conformance

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// These tests pin the fork server to full replay. A COW fork shares
// frozen pages with the trunk by reference; its deep twin is the same
// fork point rebuilt from a flat deep copy — replay semantics, no
// sharing. Running both children through identical experiments and
// demanding bit-identical everything (architectural state, trace hashes,
// per-PC profiles, taint verdicts, outcome flags) proves the COW
// machinery is invisible to results: any divergence is page sharing
// leaking state across the fork boundary.

// forkFixture holds one mid-window fork point in both representations.
type forkFixture struct {
	cow  *checkpoint.ForkPoint // shares frozen pages with the trunk
	deep *checkpoint.ForkPoint // flat deep copy of the same instant
	win  uint64                // window commits at the fork point
}

// buildForkFixture advances a fault-free atomic trunk into the workload's
// fault-injection window and captures the same instant as a COW fork
// point and as a deep copy.
func buildForkFixture(t *testing.T, w *workloads.Workload) *forkFixture {
	t.Helper()
	trunk := sim.New(sim.Config{Model: sim.ModelAtomic, EnableFI: true, MaxInsts: 200_000_000})
	p, err := w.Build()
	if err != nil {
		t.Fatalf("%s: build: %v", w.Name, err)
	}
	if err := trunk.Load(p); err != nil {
		t.Fatalf("%s: load: %v", w.Name, err)
	}
	res := sim.RunResult{Paused: true}
	for res.Paused && trunk.Engine.ThreadsActive() == 0 {
		res = trunk.RunUntil(trunk.Core.Insts + 512)
	}
	if !res.Paused {
		t.Fatalf("%s: ended before the fault-injection window opened: %+v", w.Name, res)
	}
	// Step into the window so the fork point is genuinely mid-window.
	if res = trunk.RunUntil(trunk.Core.Insts + 64); !res.Paused {
		t.Fatalf("%s: ended inside the window seek: %+v", w.Name, res)
	}
	cow := trunk.CaptureForkPoint()
	if !cow.Window.Open() {
		t.Fatalf("%s: fork point does not carry an open window", w.Name)
	}
	lo, hi := trunk.Mem.TextRegion()
	deep := &checkpoint.ForkPoint{
		Core:   cow.Core,
		Mem:    mem.CowFromSnapshot(trunk.Mem.Snapshot(), lo, hi),
		Kernel: cow.Kernel,
		Window: cow.Window,
	}
	return &forkFixture{cow: cow, deep: deep, win: cow.WindowCommits()}
}

// fixtureFaults returns the experiment faults exercised against each
// fixture: a register flip, a PC flip (crash-prone) and a fetch flip
// (predecode-cache stress), all timed after the fork point.
func fixtureFaults(win uint64) [][]core.Fault {
	return [][]core.Fault{
		{{Loc: core.LocIntReg, Reg: 3, Behavior: core.BehFlip, Bit: 17,
			Base: core.TimeInst, When: win + 40, Occ: 1}},
		{{Loc: core.LocPC, Behavior: core.BehFlip, Bit: 12,
			Base: core.TimeInst, When: win + 90, Occ: 1}},
		{{Loc: core.LocFetch, Behavior: core.BehFlip, Bit: 5,
			Base: core.TimeInst, When: win + 15, Occ: 1}},
	}
}

// runForkChild forks a fully instrumented simulator (profiler, taint
// tracker, trace hash) from fp and runs the experiment to completion.
func runForkChild(t *testing.T, w *workloads.Workload, model sim.ModelKind,
	fp *checkpoint.ForkPoint, faults []core.Fault) (*sim.Simulator, *traceHash, sim.RunResult) {
	t.Helper()
	th := &traceHash{}
	s := sim.New(sim.Config{Model: model, EnableFI: true, MaxInsts: 20_000_000,
		EnableProfiler: true, EnableTaint: true})
	p, err := w.Build()
	if err != nil {
		t.Fatalf("%s: build: %v", w.Name, err)
	}
	if err := s.Load(p); err != nil {
		t.Fatalf("%s: load: %v", w.Name, err)
	}
	s.Core.TraceFn = th.fn
	s.ForkFrom(fp, faults)
	return s, th, s.Run()
}

// TestForkIdentity is the fork-identity acceptance suite: six workloads ×
// three CPU models × three fault classes, COW fork vs deep-copy replay,
// everything bit-identical.
func TestForkIdentity(t *testing.T) {
	fired := 0
	for _, w := range workloads.All(workloads.ScaleTest) {
		fx := buildForkFixture(t, w)
		for _, model := range []sim.ModelKind{sim.ModelAtomic, sim.ModelTiming, sim.ModelPipelined} {
			for fi, faults := range fixtureFaults(fx.win) {
				label := fmt.Sprintf("%s/%s/fault%d", w.Name, model, fi)
				cowSim, cowTrace, cowRes := runForkChild(t, w, model, fx.cow, faults)
				deepSim, deepTrace, deepRes := runForkChild(t, w, model, fx.deep, faults)

				if cowRes.Failed() != deepRes.Failed() || cowRes.Hung != deepRes.Hung ||
					cowRes.ExitStatus != deepRes.ExitStatus {
					t.Errorf("%s: run disposition diverged: cow %+v, deep %+v", label, cowRes, deepRes)
					continue
				}
				// compareMachines plus a NaN-safe register comparison:
				// faulted FP state may legitimately hold NaNs, which a
				// struct != treats as self-unequal.
				if !cowSim.Core.Arch.BitsEqual(&deepSim.Core.Arch) {
					t.Errorf("%s: architectural state diverged", label)
				}
				if cowSim.Core.Insts != deepSim.Core.Insts || cowSim.Core.Ticks != deepSim.Core.Ticks {
					t.Errorf("%s: counters diverged: insts %d vs %d, ticks %d vs %d", label,
						cowSim.Core.Insts, deepSim.Core.Insts, cowSim.Core.Ticks, deepSim.Core.Ticks)
				}
				if ca, cb := cowSim.Kernel.Console(), deepSim.Kernel.Console(); ca != cb {
					t.Errorf("%s: console diverged: %q vs %q", label, ca, cb)
				}
				if _, total := mem.DiffSnapshots(cowSim.Mem.Snapshot(), deepSim.Mem.Snapshot(), 4); total != 0 {
					t.Errorf("%s: %d bytes of memory diverged", label, total)
				}
				if *cowTrace != *deepTrace {
					t.Errorf("%s: trace hash diverged: %d/%x vs %d/%x",
						label, cowTrace.n, cowTrace.h, deepTrace.n, deepTrace.h)
				}
				if !reflect.DeepEqual(cowRes.Outcomes, deepRes.Outcomes) {
					t.Errorf("%s: fault outcomes diverged:\ncow  %+v\ndeep %+v",
						label, cowRes.Outcomes, deepRes.Outcomes)
				}
				cp, dp := cowSim.Profiler().Snapshot(), deepSim.Profiler().Snapshot()
				if cp.TotalInsts != dp.TotalInsts || cp.TotalCycles != dp.TotalCycles ||
					!reflect.DeepEqual(cp.PCs, dp.PCs) {
					t.Errorf("%s: per-PC profile diverged (%d vs %d rows)", label, len(cp.PCs), len(dp.PCs))
				}
				ct := cowSim.TaintReport(cowRes.Failed(), nil)
				dt := deepSim.TaintReport(deepRes.Failed(), nil)
				if (ct == nil) != (dt == nil) {
					t.Errorf("%s: taint report presence diverged", label)
				} else if ct != nil && !reflect.DeepEqual(ct.Summary(), dt.Summary()) {
					t.Errorf("%s: taint verdicts diverged:\ncow  %+v\ndeep %+v",
						label, ct.Summary(), dt.Summary())
				}
				for _, oc := range cowRes.Outcomes {
					if oc.Fired {
						fired++
					}
				}
			}
		}
	}
	if fired == 0 {
		t.Error("no fault in the whole suite ever fired — fork points landed outside every window?")
	}
}

// TestForkPointFuzz forks children of randomized generator programs at
// randomized instruction counts and requires every one — and the trunk
// that served them — to finish bit-identical to straight-line execution.
func TestForkPointFuzz(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := ForkFuzz(seed, 4, GenConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Points == 0 {
				t.Errorf("seed %d: no fork point exercised (%d insts)", seed, res.Insts)
			}
		})
	}
}

// TestForkCampaignVerdictIdentity runs the same experiments through a
// fork-server campaign runner and a plain replay runner for every
// workload and requires identical outcome classes — the campaign-level
// half of the acceptance criteria.
func TestForkCampaignVerdictIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign pair per workload is slow")
	}
	for _, w := range workloads.All(workloads.ScaleTest) {
		replay, err := campaign.NewRunner(w, campaign.RunnerOptions{})
		if err != nil {
			t.Fatalf("%s: runner: %v", w.Name, err)
		}
		fork, err := campaign.NewRunner(w, campaign.RunnerOptions{})
		if err != nil {
			t.Fatalf("%s: runner: %v", w.Name, err)
		}
		if err := fork.EnableFork(campaign.DefaultForkOptions()); err != nil {
			t.Fatalf("%s: EnableFork: %v", w.Name, err)
		}
		exps := campaign.GenerateUniform(8, campaign.GenConfig{WindowInsts: replay.WindowInsts, Seed: 42})
		for _, e := range exps {
			got := fork.Run(e)
			want := replay.Run(e)
			if got.Outcome != want.Outcome || got.Fired != want.Fired {
				t.Errorf("%s exp %d (%s): fork %v/fired=%v, replay %v/fired=%v",
					w.Name, e.ID, e.Faults[0], got.Outcome, got.Fired, want.Outcome, want.Fired)
			}
		}
	}
}
