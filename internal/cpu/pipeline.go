package cpu

import (
	"math"

	"repro/internal/isa"
	"repro/internal/prof"
)

// f64FromBits is a local alias kept for readability in forwarding paths.
func f64FromBits(b uint64) float64 { return math.Float64frombits(b) }

// PipelinedModel is the cycle-accurate CPU model: a scalar 5-stage
// pipeline (IF, ID, EX, MEM, WB) with speculative fetch driven by the
// tournament branch predictor, full operand forwarding, cache-latency
// stalls and branch-mispredict squashing. It is the stand-in for gem5's
// O3 model (see DESIGN.md): it provides the per-stage fault injection
// points, the commit-or-squash lifecycle the paper's campaign methodology
// depends on, and a large cycle-cost gap versus the atomic model.
type PipelinedModel struct {
	C    *Core
	Pred *Predictor

	// The five latches are pointers into a fixed set of slots; stage
	// advances swap pointers instead of copying ~130-byte structs (the
	// struct copies dominated the cycle loop's profile).
	ifs, ids, exs, mms, wbs *pipeSlot

	fetchPC      uint64
	serialize    bool   // a PAL instruction is in flight: stop fetching
	serializeSeq uint64 // seq of the serializing instruction
	draining     bool
	squashRefill bool // last bubble came from a squash, not a miss

	Squashes uint64 // squashed instructions (speculation statistics)
}

var _ Model = (*PipelinedModel)(nil)

// pipeSlot is one pipeline latch.
type pipeSlot struct {
	valid bool
	seq   uint64
	pc    uint64
	word  uint32
	fi    bool // FI hooks were live when this instruction was fetched

	decoded    bool
	predecoded bool // in/ports came from the predecode cache at fetch
	in         isa.Inst
	ports      isa.RegPorts

	executed   bool
	out        ExecOut
	actualNext uint64

	accessed bool
	loadVal  uint64
	busy     uint64 // remaining stall cycles in the current stage

	predNext uint64
	trap     *Trap
}

// NewPipelined builds the pipelined model for core c, starting fetch at
// the core's architectural PC.
func NewPipelined(c *Core) *PipelinedModel {
	slots := make([]pipeSlot, 5)
	return &PipelinedModel{
		C: c, Pred: NewPredictor(), fetchPC: c.Arch.PC,
		ifs: &slots[0], ids: &slots[1], exs: &slots[2], mms: &slots[3], wbs: &slots[4],
	}
}

// ModelName implements Model.
func (m *PipelinedModel) ModelName() string { return "pipelined" }

// InFlight reports how many instructions occupy pipeline latches.
func (m *PipelinedModel) InFlight() int {
	n := 0
	for _, s := range [...]*pipeSlot{m.ifs, m.ids, m.exs, m.mms, m.wbs} {
		if s.valid {
			n++
		}
	}
	return n
}

// Drain implements Model: completes (or squashes via traps) everything in
// flight without fetching new instructions, leaving the architectural PC
// at the next unexecuted instruction. Used before switching to the atomic
// model mid-run (the paper's post-fault-manifestation switch).
func (m *PipelinedModel) Drain() {
	m.draining = true
	for m.InFlight() > 0 && !m.C.Stopped {
		m.Step()
	}
	m.draining = false
	m.fetchPC = m.C.Arch.PC
	m.serialize = false
}

// Step advances the pipeline by one cycle.
func (m *PipelinedModel) Step() bool {
	c := m.C
	if c.Stopped {
		return false
	}
	c.Ticks++
	if c.FI != nil {
		c.FI.OnTick(c.Ticks)
	}

	retired := m.commitStage()
	if c.Stopped {
		return false
	}
	if !retired && c.Prof != nil {
		pc, cause := m.stallPoint()
		c.Prof.OnStall(pc, cause, 1)
	}
	m.memStage()
	m.execStage()
	m.decodeStage()
	m.fetchMove()
	if !m.draining {
		m.fetchStage()
	}
	return !c.Stopped
}

// commitStage retires the instruction in WB; reports whether an
// instruction actually retired this cycle (for stall accounting).
func (m *PipelinedModel) commitStage() bool {
	c := m.C
	s := m.wbs
	if !s.valid {
		return false
	}
	if s.trap != nil {
		s.trap.PC = s.pc
		m.squashYoungerThanWB()
		c.stop(s.trap)
		return false
	}
	c.writeback(s.in, s.ports, s.out, s.loadVal)
	c.Arch.PC = s.actualNext
	if c.TraceFn != nil {
		c.TraceFn(s.pc, s.in)
	}
	if c.Prof != nil {
		c.profileCommit(s.pc, s.in, &s.out)
	}
	m.squashRefill = false
	red := c.commitEpilogue(s.seq, s.pc, s.in, s.ports, &s.out, s.loadVal, s.fi)
	s.valid = false
	if red.stopped {
		return true
	}
	if red.redirect {
		m.squashYoungerThanWB()
		m.fetchPC = red.target
		m.serialize = false
	}
	return true
}

// stallPoint classifies a no-commit cycle and picks the PC to charge:
// the oldest in-flight instruction, falling back to the fetch target
// when the pipeline is empty (refill after a squash or a long I-miss).
func (m *PipelinedModel) stallPoint() (uint64, prof.StallCause) {
	switch {
	case m.mms.valid:
		return m.mms.pc, prof.StallMem
	case m.exs.valid:
		return m.exs.pc, prof.StallDrain
	case m.ids.valid:
		return m.ids.pc, prof.StallDrain
	case m.ifs.valid:
		if m.squashRefill {
			return m.ifs.pc, prof.StallSquash
		}
		return m.ifs.pc, prof.StallFetch
	case m.squashRefill:
		return m.fetchPC, prof.StallSquash
	default:
		return m.fetchPC, prof.StallFetch
	}
}

// memStage performs the memory access and advances MEM -> WB.
func (m *PipelinedModel) memStage() {
	c := m.C
	s := m.mms
	if !s.valid || m.wbs.valid {
		return
	}
	if !s.accessed {
		s.accessed = true
		if s.trap == nil && s.in.Kind.IsMem() {
			val, lat, trap := c.accessMem(s.seq, s.pc, s.in, &s.out, s.fi)
			if trap != nil {
				s.trap = trap
			} else {
				s.loadVal = val
			}
			if lat > 1 {
				s.busy = lat - 1
			}
		}
	}
	if s.busy > 0 {
		s.busy--
		return
	}
	m.wbs, m.mms = m.mms, m.wbs
	m.mms.valid = false
}

// execStage executes the instruction in EX, resolves branches and
// advances EX -> MEM.
func (m *PipelinedModel) execStage() {
	c := m.C
	s := m.exs
	if !s.valid || m.mms.valid {
		return
	}
	if !s.executed {
		s.executed = true
		if s.trap == nil {
			a, b, fa, fb := m.readOperandsFwd(s)
			s.out = Execute(s.in, a, b, fa, fb, s.pc)
			if s.fi {
				c.FI.OnExecute(s.seq, s.pc, s.in, &s.out)
			}
			if s.out.TrapKind != TrapNone {
				s.trap = &Trap{Kind: s.out.TrapKind, PC: s.pc, Word: s.in.Raw}
			}
		}
		if s.in.Kind.IsBranch() && s.out.Taken {
			s.actualNext = s.out.Target
		} else {
			s.actualNext = s.pc + 4
		}
		if s.trap == nil && s.in.Kind.IsBranch() {
			m.Pred.Update(BranchInfo{
				PC:     s.pc,
				Taken:  s.out.Taken,
				Target: s.out.Target,
				IsRet:  s.in.Kind == isa.KindJMP && s.in.Hint == isa.HintRET,
				IsCall: s.in.Kind == isa.KindBSR || (s.in.Kind == isa.KindJMP && s.in.Hint == isa.HintJSR),
				Uncond: !s.in.Kind.IsCondBranch(),
			})
		}
		// Redirect the front end on any next-PC mismatch: branch
		// mispredicts and BTB aliasing alike. PAL instructions serialize
		// instead (the front end is already stalled).
		if s.trap == nil && s.in.Format != isa.FormatPAL && s.actualNext != s.predNext {
			m.Pred.Mispredicts++
			if c.Prof != nil {
				c.Prof.OnMispredict(s.pc)
			}
			m.squashFrontend()
			m.fetchPC = s.actualNext
		}
	}
	m.mms, m.exs = m.exs, m.mms
	m.mms.accessed = false
	m.mms.busy = 0
	m.exs.valid = false
}

// decodeStage decodes the instruction in ID and advances ID -> EX.
func (m *PipelinedModel) decodeStage() {
	c := m.C
	s := m.ids
	if !s.valid || m.exs.valid {
		return
	}
	if !s.decoded {
		s.decoded = true
		if s.trap == nil {
			if !s.predecoded {
				s.in, s.ports = c.decode(s.word)
				if s.fi {
					s.ports = c.FI.OnDecode(s.seq, s.pc, s.ports)
				} else {
					c.predecodeFill(s.pc, s.word, s.in, s.ports)
				}
			}
			if s.in.Format == isa.FormatPAL && s.in.Kind != isa.KindNop {
				// Serialize: nothing younger may enter the pipeline until
				// this instruction commits and redirects. (Nops flow
				// normally; illegal PAL encodings trap at commit anyway.)
				if m.ifs.valid {
					m.squashSlot(m.ifs)
				}
				m.serialize = true
				m.serializeSeq = s.seq
			}
		}
	}
	m.exs, m.ids = m.ids, m.exs
	m.ids.valid = false
}

// fetchMove advances IF -> ID once the I-cache access completes.
func (m *PipelinedModel) fetchMove() {
	s := m.ifs
	if !s.valid {
		return
	}
	if s.busy > 0 {
		s.busy--
		return
	}
	if m.ids.valid {
		return
	}
	m.ids, m.ifs = m.ifs, m.ids
	m.ifs.valid = false
}

// fetchStage fetches a new instruction at fetchPC and predicts the next
// fetch address.
func (m *PipelinedModel) fetchStage() {
	c := m.C
	if m.ifs.valid || m.serialize {
		return
	}
	pc := m.fetchPC
	s := m.ifs
	*s = pipeSlot{valid: true, seq: c.NextSeq(), pc: pc, fi: c.fiEnabled()}
	if pc%4 != 0 {
		s.trap = &Trap{Kind: TrapFetchFault, PC: pc}
		s.decoded = true // nothing to decode
	} else if e := c.predecodeLookup(pc); e != nil && !s.fi {
		// Predecode hit: the word and decode come from the cache, skipping
		// the memory read and the decode-stage work. Timing (I-cache
		// access, stalls) is charged identically.
		s.word, s.in, s.ports, s.predecoded = e.word, e.in, e.ports, true
		if c.Hier != nil {
			lat, miss := c.Hier.FetchAccess(pc)
			if lat > 1 {
				s.busy = lat - 1
			}
			if miss && c.Prof != nil {
				c.Prof.OnIMiss(pc)
			}
		}
	} else if w, err := c.Mem.Read32(pc); err != nil {
		s.trap = &Trap{Kind: TrapFetchFault, PC: pc}
		s.decoded = true
	} else {
		if c.Hier != nil {
			lat, miss := c.Hier.FetchAccess(pc)
			if lat > 1 {
				s.busy = lat - 1
			}
			if miss && c.Prof != nil {
				c.Prof.OnIMiss(pc)
			}
		}
		if s.fi {
			w = c.FI.OnFetch(s.seq, pc, w)
		}
		s.word = w
	}
	pred := m.Pred.Predict(pc)
	s.predNext = pred.Next
	m.fetchPC = pred.Next
}

// squashSlot invalidates a speculative slot and notifies the injector.
func (m *PipelinedModel) squashSlot(s *pipeSlot) {
	if !s.valid {
		return
	}
	if m.C.FI != nil {
		m.C.FI.OnSquash(s.seq)
	}
	if m.C.Taint != nil {
		m.C.Taint.OnSquash(s.seq)
	}
	if m.C.Flight != nil {
		m.C.Flight.OnSquash(s.seq)
	}
	if m.serialize && s.seq == m.serializeSeq {
		m.serialize = false
	}
	m.Squashes++
	m.squashRefill = true
	s.valid = false
}

// squashFrontend squashes IF and ID (branch mispredict resolution).
func (m *PipelinedModel) squashFrontend() {
	m.squashSlot(m.ids)
	m.squashSlot(m.ifs)
}

// squashYoungerThanWB squashes everything behind the committing
// instruction (trap, PAL serialization, kernel redirect, FI PC fault).
func (m *PipelinedModel) squashYoungerThanWB() {
	m.squashSlot(m.mms)
	m.squashSlot(m.exs)
	m.squashSlot(m.ids)
	m.squashSlot(m.ifs)
}

// readOperandsFwd reads register operands with forwarding from the
// not-yet-committed instructions in MEM and WB.
func (m *PipelinedModel) readOperandsFwd(s *pipeSlot) (a, b uint64, fa, fb float64) {
	p := s.ports
	if p.SrcAUsed {
		if p.SrcAFP {
			fa = m.fwdF(p.SrcA)
		} else {
			a = m.fwdR(p.SrcA)
		}
	}
	if p.SrcBUsed {
		if p.SrcBFP {
			fb = m.fwdF(p.SrcB)
		} else {
			b = m.fwdR(p.SrcB)
		}
	}
	if s.in.Format == isa.FormatFP {
		fa = m.fwdF(p.SrcA)
		fb = m.fwdF(p.SrcB)
	}
	if s.in.IsLit {
		b = uint64(s.in.Lit)
	}
	return a, b, fa, fb
}

// fwdR resolves an integer register value, forwarding from in-flight
// producers (nearest older first: MEM, then WB), falling back to the
// architectural file.
func (m *PipelinedModel) fwdR(r isa.Reg) uint64 {
	if r == isa.ZeroReg {
		return 0
	}
	for _, src := range [...]*pipeSlot{m.mms, m.wbs} {
		if src.valid && src.trap == nil && src.ports.DstUsed && !src.ports.DstFP && src.ports.Dst == r {
			if src.in.Kind.IsLoad() {
				return src.loadVal
			}
			return src.out.IntRes
		}
	}
	return m.C.Arch.ReadReg(r)
}

// fwdF resolves a floating point register value with forwarding.
func (m *PipelinedModel) fwdF(r isa.Reg) float64 {
	if r == isa.ZeroReg {
		return 0
	}
	for _, src := range [...]*pipeSlot{m.mms, m.wbs} {
		if src.valid && src.trap == nil && src.ports.DstUsed && src.ports.DstFP && src.ports.Dst == r {
			if src.in.Kind == isa.KindLDT {
				return f64FromBits(src.loadVal)
			}
			return src.out.FpRes
		}
	}
	return m.C.Arch.ReadFReg(r)
}
