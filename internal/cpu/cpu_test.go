package cpu_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// run assembles src, boots it and runs it to completion on the given
// model kind ("atomic", "timing", "pipelined"), returning the core and
// kernel for inspection.
func run(t *testing.T, src, model string) (*cpu.Core, *kernel.Kernel) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.New()
	core := &cpu.Core{Name: "system.cpu0", Mem: m}
	k := kernel.New(m)
	if err := k.Boot(core, p); err != nil {
		t.Fatalf("boot: %v", err)
	}
	var mdl cpu.Model
	switch model {
	case "atomic":
		mdl = cpu.NewAtomic(core)
	case "timing":
		core.Hier = mem.NewHierarchy(mem.DefaultHierarchyConfig())
		mdl = cpu.NewTiming(core)
	case "pipelined":
		core.Hier = mem.NewHierarchy(mem.DefaultHierarchyConfig())
		mdl = cpu.NewPipelined(core)
	default:
		t.Fatalf("unknown model %q", model)
	}
	for i := 0; i < 50_000_000 && mdl.Step(); i++ {
	}
	if !core.Stopped {
		t.Fatalf("%s: watchdog expired (insts=%d)", model, core.Insts)
	}
	return core, k
}

var models = []string{"atomic", "timing", "pipelined"}

const exitStub = `
    mov  v0, a0
    li   v0, 1      ; SysExit
    callsys
`

func TestArithmeticProgram(t *testing.T) {
	// Computes sum(1..10) = 55 and exits with it.
	src := `
_start:
    li   t0, 10
    li   t1, 0
loop:
    addq t1, t0, t1
    subq t0, #1, t0
    bne  t0, loop
    mov  t1, v0
` + exitStub
	for _, m := range models {
		core, _ := run(t, src, m)
		if core.Trap != nil {
			t.Fatalf("%s: trap %v", m, core.Trap)
		}
		if core.ExitStatus != 55 {
			t.Errorf("%s: exit = %d, want 55", m, core.ExitStatus)
		}
	}
}

func TestLoadsStoresAndBytes(t *testing.T) {
	src := `
_start:
    la   t0, arr
    li   t1, 7
    stq  t1, 8(t0)
    ldq  t2, 8(t0)
    la   t3, bytes
    li   t4, 200
    stb  t4, 3(t3)
    ldbu t5, 3(t3)
    addq t2, t5, v0   ; 7 + 200 = 207
` + exitStub + `
.data
arr:   .quad 0, 0, 0
bytes: .space 8
`
	for _, m := range models {
		core, _ := run(t, src, m)
		if core.ExitStatus != 207 {
			t.Errorf("%s: exit = %d, want 207", m, core.ExitStatus)
		}
	}
}

func TestFloatingPoint(t *testing.T) {
	// ((1.5 + 2.5) * 4 - 6) / 2 = 5; sqrt(25) = 5; exit 10.
	src := `
_start:
    la   t0, consts
    ldt  f1, 0(t0)    ; 1.5
    ldt  f2, 8(t0)    ; 2.5
    ldt  f3, 16(t0)   ; 4.0
    ldt  f4, 24(t0)   ; 6.0
    ldt  f5, 32(t0)   ; 2.0
    ldt  f6, 40(t0)   ; 25.0
    addt f1, f2, f7
    mult f7, f3, f7
    subt f7, f4, f7
    divt f7, f5, f7   ; 5.0
    sqrtt f31, f6, f8 ; 5.0
    addt f7, f8, f9   ; 10.0
    cvttq f31, f9, f10
    stt  f10, 48(t0)
    ldq  v0, 48(t0)
` + exitStub + `
.data
consts: .double 1.5, 2.5, 4.0, 6.0, 2.0, 25.0, 0.0
`
	for _, m := range models {
		core, _ := run(t, src, m)
		if core.ExitStatus != 10 {
			t.Errorf("%s: exit = %d, want 10", m, core.ExitStatus)
		}
	}
}

func TestCvtQTRoundTrip(t *testing.T) {
	// int 42 -> float -> +1.0 -> int 43.
	src := `
_start:
    la   t0, scratch
    li   t1, 42
    stq  t1, 0(t0)
    ldt  f1, 0(t0)     ; reinterpret bits
    cvtqt f31, f1, f2  ; 42.0
    la   t2, one
    ldt  f3, 0(t2)
    addt f2, f3, f2    ; 43.0
    cvttq f31, f2, f4
    stt  f4, 0(t0)
    ldq  v0, 0(t0)
` + exitStub + `
.data
scratch: .quad 0
one:     .double 1.0
`
	for _, m := range models {
		core, _ := run(t, src, m)
		if core.ExitStatus != 43 {
			t.Errorf("%s: exit = %d, want 43", m, core.ExitStatus)
		}
	}
}

func TestSubroutineCallAndReturn(t *testing.T) {
	src := `
_start:
    li   a0, 20
    bsr  ra, double
    mov  v0, t5
    li   a0, 1
    bsr  ra, double
    addq t5, v0, v0   ; 40 + 2 = 42
` + exitStub + `
double:
    addq a0, a0, v0
    ret
`
	for _, m := range models {
		core, _ := run(t, src, m)
		if core.ExitStatus != 42 {
			t.Errorf("%s: exit = %d, want 42", m, core.ExitStatus)
		}
	}
}

func TestIndirectJump(t *testing.T) {
	src := `
_start:
    la   pv, target
    jsr  ra, (pv)
    mov  v0, v0
` + exitStub + `
target:
    li   v0, 99
    ret
`
	for _, m := range models {
		core, _ := run(t, src, m)
		if core.ExitStatus != 99 {
			t.Errorf("%s: exit = %d, want 99", m, core.ExitStatus)
		}
	}
}

func TestDivideAndRemainder(t *testing.T) {
	src := `
_start:
    li   t0, -17
    li   t1, 5
    divq t0, t1, t2   ; -3
    remq t0, t1, t3   ; -2
    mulq t2, t1, t4   ; -15
    addq t4, t3, t4   ; -17
    subq t0, t4, v0   ; 0
    addq v0, #7, v0   ; 7
` + exitStub
	for _, m := range models {
		core, _ := run(t, src, m)
		if core.ExitStatus != 7 {
			t.Errorf("%s: exit = %d, want 7", m, core.ExitStatus)
		}
	}
}

func TestDivideByZeroTraps(t *testing.T) {
	src := `
_start:
    li  t0, 1
    li  t1, 0
    divq t0, t1, t2
` + exitStub
	for _, m := range models {
		core, _ := run(t, src, m)
		if core.Trap == nil || core.Trap.Kind != cpu.TrapArith {
			t.Errorf("%s: trap = %v, want arithmetic", m, core.Trap)
		}
	}
}

func TestIllegalInstructionTraps(t *testing.T) {
	// 0x04000000 has undefined opcode 0x01.
	p, err := asm.Assemble("_start:\n nop\n nop\n")
	if err != nil {
		t.Fatal(err)
	}
	p.Text[1] = isa.Word(0x04000000)
	for _, m := range models {
		core := bootRaw(t, p, m)
		if core.Trap == nil || core.Trap.Kind != cpu.TrapIllegal {
			t.Errorf("%s: trap = %v, want illegal instruction", m, core.Trap)
		}
	}
}

func TestUnmappedLoadSegfaults(t *testing.T) {
	src := `
_start:
    li  t0, 0
    ldq t1, 0(t0)
` + exitStub
	for _, m := range models {
		core, _ := run(t, src, m)
		if core.Trap == nil || core.Trap.Kind != cpu.TrapMemFault {
			t.Errorf("%s: trap = %v, want segfault", m, core.Trap)
		}
	}
}

func TestUnalignedAccessTraps(t *testing.T) {
	src := `
_start:
    la  t0, arr
    ldq t1, 4(t0)
` + exitStub + `
.data
arr: .quad 1, 2
`
	for _, m := range models {
		core, _ := run(t, src, m)
		if core.Trap == nil || core.Trap.Kind != cpu.TrapUnaligned {
			t.Errorf("%s: trap = %v, want unaligned", m, core.Trap)
		}
	}
}

func TestWildJumpFetchFaults(t *testing.T) {
	src := `
_start:
    li  t0, 0x500000
    jmp (t0)
` + exitStub
	for _, m := range models {
		core, _ := run(t, src, m)
		if core.Trap == nil || core.Trap.Kind != cpu.TrapFetchFault {
			t.Errorf("%s: trap = %v, want fetch fault", m, core.Trap)
		}
	}
}

func TestConsoleOutput(t *testing.T) {
	src := `
_start:
    li  a0, 72     ; 'H'
    li  v0, 2      ; SysPutc
    callsys
    li  a0, 105    ; 'i'
    li  v0, 2
    callsys
    li  v0, 0
` + exitStub
	for _, m := range models {
		_, k := run(t, src, m)
		if got := k.Console(); got != "Hi" {
			t.Errorf("%s: console = %q", m, got)
		}
	}
}

// TestModelEquivalence runs a branchy, memory-heavy checksum program on
// all three models and requires identical architectural results — the
// paper's Section IV.A property that fault-injection-capable simulation
// does not perturb program semantics, extended across CPU models.
func TestModelEquivalence(t *testing.T) {
	src := `
; xorshift-style mixing over an array, with data-dependent branches
_start:
    la   t0, arr
    li   t1, 64        ; elements
    li   t2, 12345     ; state
    li   t3, 0         ; index
fill:
    mulq t2, #13, t2
    addq t2, #7, t2
    srl  t2, #3, t4
    xor  t2, t4, t2
    sll  t3, #3, t5
    addq t0, t5, t5
    stq  t2, 0(t5)
    addq t3, #1, t3
    cmplt t3, t1, t6
    bne  t6, fill
    li   t3, 0
    li   t7, 0
sum:
    sll  t3, #3, t5
    addq t0, t5, t5
    ldq  t4, 0(t5)
    and  t4, #1, t6
    beq  t6, even
    addq t7, t4, t7
    br   next
even:
    subq t7, t4, t7
next:
    addq t3, #1, t3
    cmplt t3, t1, t6
    bne  t6, sum
    ; fold to a small exit code
    srl  t7, #17, t8
    xor  t7, t8, t7
    and  t7, #255, v0
` + exitStub + `
.data
arr: .space 512
`
	var ref int
	var refInsts uint64
	for i, m := range models {
		core, _ := run(t, src, m)
		if core.Trap != nil {
			t.Fatalf("%s: trap %v", m, core.Trap)
		}
		if i == 0 {
			ref = core.ExitStatus
			refInsts = core.Insts
			continue
		}
		if core.ExitStatus != ref {
			t.Errorf("%s: exit = %d, atomic = %d", m, core.ExitStatus, ref)
		}
		if core.Insts != refInsts {
			t.Errorf("%s: committed %d insts, atomic committed %d", m, core.Insts, refInsts)
		}
	}
}

// TestPipelineCostsMoreTicks checks the basic speed/accuracy trade-off
// between models that the paper exploits: the cycle-accurate model spends
// far more ticks than the functional one.
func TestPipelineCostsMoreTicks(t *testing.T) {
	src := `
_start:
    li   t0, 500
loop:
    subq t0, #1, t0
    bne  t0, loop
    li   v0, 0
` + exitStub
	atomic, _ := run(t, src, "atomic")
	pipe, _ := run(t, src, "pipelined")
	if pipe.Ticks <= atomic.Ticks {
		t.Errorf("pipelined ticks %d <= atomic ticks %d", pipe.Ticks, atomic.Ticks)
	}
}

// TestBranchPredictorLearns requires that a hot loop's mispredict rate is
// low once the tournament predictor warms up.
func TestBranchPredictorLearns(t *testing.T) {
	src := `
_start:
    li   t0, 2000
loop:
    subq t0, #1, t0
    bne  t0, loop
    li   v0, 0
` + exitStub
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	core := &cpu.Core{Name: "cpu", Mem: mem.New()}
	k := kernel.New(core.Mem)
	if err := k.Boot(core, p); err != nil {
		t.Fatal(err)
	}
	mdl := cpu.NewPipelined(core)
	for mdl.Step() {
	}
	if core.Trap != nil {
		t.Fatalf("trap: %v", core.Trap)
	}
	if mdl.Pred.Mispredicts > 50 {
		t.Errorf("mispredicts = %d for a 2000-iteration loop", mdl.Pred.Mispredicts)
	}
	if mdl.Squashes == 0 {
		t.Error("expected at least some squashed wrong-path instructions")
	}
}

// TestSpawnJoinThreads exercises the kernel's thread machinery: two
// workers increment shared counters; main joins and sums.
func TestSpawnJoinThreads(t *testing.T) {
	src := `
_start:
    la   t9, cells
    ; spawn(worker, &cells[0])
    la   a0, worker
    mov  t9, a1
    li   v0, 4
    callsys
    mov  v0, s0        ; tid1
    ; spawn(worker, &cells[1])
    la   a0, worker
    addq t9, #8, a1
    li   v0, 4
    callsys
    mov  v0, s1        ; tid2
    ; join both
    mov  s0, a0
    li   v0, 7
    callsys
    mov  s1, a0
    li   v0, 7
    callsys
    ; sum the cells
    ldq  t1, 0(t9)
    ldq  t2, 8(t9)
    addq t1, t2, v0
` + exitStub + `
worker:
    ; a0 = target cell; write 21 into it after a small delay loop
    li   t0, 300
wspin:
    subq t0, #1, t0
    bne  t0, wspin
    li   t1, 21
    stq  t1, 0(a0)
    li   v0, 6        ; SysThreadExit
    li   a0, 0
    callsys
.data
cells: .quad 0, 0
`
	for _, m := range models {
		core, k := run(t, src, m)
		if core.Trap != nil {
			t.Fatalf("%s: trap %v", m, core.Trap)
		}
		if core.ExitStatus != 42 {
			t.Errorf("%s: exit = %d, want 42", m, core.ExitStatus)
		}
		if k.ContextSwitches == 0 {
			t.Errorf("%s: expected context switches", m)
		}
	}
}

// TestPreemptionInterleavesThreads uses a tiny quantum so two spinning
// threads must interleave for either to observe the other's progress.
func TestPreemptionInterleavesThreads(t *testing.T) {
	src := `
_start:
    la   a0, flagfn
    li   a1, 0
    li   v0, 4        ; spawn
    callsys
    ; spin until flag becomes nonzero (requires preemption)
    la   t0, flag
wait:
    ldq  t1, 0(t0)
    beq  t1, wait
    mov  t1, v0
` + exitStub + `
flagfn:
    la   t0, flag
    li   t1, 77
    stq  t1, 0(t0)
    li   v0, 6
    li   a0, 0
    callsys
.data
flag: .quad 0
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	core := &cpu.Core{Name: "cpu", Mem: mem.New()}
	k := kernel.New(core.Mem)
	k.Quantum = 50
	if err := k.Boot(core, p); err != nil {
		t.Fatal(err)
	}
	mdl := cpu.NewAtomic(core)
	for i := 0; i < 1_000_000 && mdl.Step(); i++ {
	}
	if !core.Stopped || core.ExitStatus != 77 {
		t.Fatalf("exit=%d stopped=%v trap=%v", core.ExitStatus, core.Stopped, core.Trap)
	}
}

// bootRaw boots a pre-built program image.
func bootRaw(t *testing.T, p *asm.Program, model string) *cpu.Core {
	t.Helper()
	core := &cpu.Core{Name: "cpu", Mem: mem.New()}
	k := kernel.New(core.Mem)
	if err := k.Boot(core, p); err != nil {
		t.Fatal(err)
	}
	var mdl cpu.Model
	switch model {
	case "atomic":
		mdl = cpu.NewAtomic(core)
	case "timing":
		core.Hier = mem.NewHierarchy(mem.DefaultHierarchyConfig())
		mdl = cpu.NewTiming(core)
	default:
		core.Hier = mem.NewHierarchy(mem.DefaultHierarchyConfig())
		mdl = cpu.NewPipelined(core)
	}
	for i := 0; i < 10_000_000 && mdl.Step(); i++ {
	}
	return core
}

func BenchmarkAtomicModel(b *testing.B) {
	benchModel(b, "atomic")
}

func BenchmarkPipelinedModel(b *testing.B) {
	benchModel(b, "pipelined")
}

func benchModel(b *testing.B, model string) {
	src := `
_start:
    li   t0, 1000
loop:
    subq t0, #1, t0
    bne  t0, loop
    li   v0, 1
    li   a0, 0
    callsys
`
	p, err := asm.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core := &cpu.Core{Name: "cpu", Mem: mem.New()}
		k := kernel.New(core.Mem)
		if err := k.Boot(core, p); err != nil {
			b.Fatal(err)
		}
		var mdl cpu.Model
		if model == "atomic" {
			mdl = cpu.NewAtomic(core)
		} else {
			core.Hier = mem.NewHierarchy(mem.DefaultHierarchyConfig())
			mdl = cpu.NewPipelined(core)
		}
		for mdl.Step() {
		}
		if core.Trap != nil {
			b.Fatal(core.Trap)
		}
	}
}
