package cpu_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// pipelineFor boots src on a fresh pipelined core without cache timing
// (deterministic single-cycle stages).
func pipelineFor(t *testing.T, src string) (*cpu.Core, *cpu.PipelinedModel) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	core := &cpu.Core{Name: "cpu", Mem: mem.New()}
	k := kernel.New(core.Mem)
	if err := k.Boot(core, p); err != nil {
		t.Fatal(err)
	}
	return core, cpu.NewPipelined(core)
}

// TestForwardingEXtoEX: back-to-back dependent ALU ops must see each
// other's results through the bypass network, not stale registers.
func TestForwardingEXtoEX(t *testing.T) {
	core, mdl := pipelineFor(t, `
_start:
    li   t0, 1
    addq t0, t0, t0   ; 2
    addq t0, t0, t0   ; 4
    addq t0, t0, t0   ; 8
    mov  t0, a0
    li   v0, 1
    callsys
`)
	for mdl.Step() {
	}
	if core.ExitStatus != 8 {
		t.Fatalf("exit = %d, want 8 (forwarding broken)", core.ExitStatus)
	}
}

// TestForwardingLoadUse: a load immediately consumed by the next
// instruction must deliver the loaded value.
func TestForwardingLoadUse(t *testing.T) {
	core, mdl := pipelineFor(t, `
_start:
    la   t0, cell
    li   t1, 41
    stq  t1, 0(t0)
    ldq  t2, 0(t0)
    addq t2, #1, a0   ; load-use: must see 41
    li   v0, 1
    callsys
.data
cell: .quad 0
`)
	for mdl.Step() {
	}
	if core.ExitStatus != 42 {
		t.Fatalf("exit = %d, want 42 (load-use forwarding broken)", core.ExitStatus)
	}
}

// TestStoreLoadSameAddress: a store followed immediately by a load of the
// same address must observe the stored value (memory stage ordering).
func TestStoreLoadSameAddress(t *testing.T) {
	core, mdl := pipelineFor(t, `
_start:
    la   t0, cell
    li   t1, 7
    stq  t1, 0(t0)
    li   t1, 9
    stq  t1, 0(t0)
    ldq  a0, 0(t0)
    li   v0, 1
    callsys
.data
cell: .quad 0
`)
	for mdl.Step() {
	}
	if core.ExitStatus != 9 {
		t.Fatalf("exit = %d, want 9", core.ExitStatus)
	}
}

// TestPALSerialization: instructions after a syscall must not execute
// speculatively — the console byte must be exactly one 'A' even though
// the putc sequence is followed by tight code.
func TestPALSerialization(t *testing.T) {
	src := `
_start:
    li   a0, 65
    li   v0, 2
    callsys           ; putc('A')
    li   a0, 0
    li   v0, 1
    callsys           ; exit(0)
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	core := &cpu.Core{Name: "cpu", Mem: mem.New()}
	k := kernel.New(core.Mem)
	if err := k.Boot(core, p); err != nil {
		t.Fatal(err)
	}
	mdl := cpu.NewPipelined(core)
	for mdl.Step() {
	}
	if k.Console() != "A" {
		t.Fatalf("console = %q", k.Console())
	}
	if core.ExitStatus != 0 {
		t.Fatalf("exit = %d", core.ExitStatus)
	}
}

// TestDrainLeavesCleanArchState: draining mid-run must leave the
// architectural PC at the next unexecuted instruction so the atomic
// model can continue seamlessly.
func TestDrainLeavesCleanArchState(t *testing.T) {
	core, mdl := pipelineFor(t, `
_start:
    li   t0, 1000
loop:
    subq t0, #1, t0
    bne  t0, loop
    mov  t0, a0
    li   v0, 1
    callsys
`)
	// Run some cycles, then drain and continue atomically.
	for i := 0; i < 137 && mdl.Step(); i++ {
	}
	mdl.Drain()
	if mdl.InFlight() != 0 {
		t.Fatalf("in flight after drain: %d", mdl.InFlight())
	}
	atomic := cpu.NewAtomic(core)
	for atomic.Step() {
	}
	if core.Trap != nil || core.ExitStatus != 0 {
		t.Fatalf("continuation failed: trap=%v exit=%d", core.Trap, core.ExitStatus)
	}
}

// TestSquashStatisticsAccumulate: a branchy program must squash some
// wrong-path instructions; squash counts and predictor lookups must be
// consistent.
func TestSquashStatisticsAccumulate(t *testing.T) {
	core, mdl := pipelineFor(t, `
_start:
    li   t0, 50
    li   t1, 0
loop:
    and  t0, #1, t2
    beq  t2, even
    addq t1, #3, t1
    br   next
even:
    addq t1, #5, t1
next:
    subq t0, #1, t0
    bne  t0, loop
    mov  t1, a0
    li   v0, 1
    callsys
`)
	for mdl.Step() {
	}
	if core.Trap != nil {
		t.Fatal(core.Trap)
	}
	if mdl.Squashes == 0 {
		t.Error("no squashes in an alternating-branch program")
	}
	if mdl.Pred.Lookups == 0 {
		t.Error("predictor never consulted")
	}
	// 25 odd (+3) + 25 even (+5) = 200.
	if core.ExitStatus != 200 {
		t.Errorf("exit = %d, want 200", core.ExitStatus)
	}
}

// TestTraceFnSeesEveryCommit: the trace hook must fire once per committed
// instruction, in program order, on both models.
func TestTraceFnSeesEveryCommit(t *testing.T) {
	src := `
_start:
    li  t0, 5
l:  subq t0, #1, t0
    bne t0, l
    li  a0, 0
    li  v0, 1
    callsys
`
	for _, pipelined := range []bool{false, true} {
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		core := &cpu.Core{Name: "cpu", Mem: mem.New()}
		k := kernel.New(core.Mem)
		if err := k.Boot(core, p); err != nil {
			t.Fatal(err)
		}
		var pcs []uint64
		core.TraceFn = func(pc uint64, in isa.Inst) { pcs = append(pcs, pc) }
		var mdl cpu.Model
		if pipelined {
			mdl = cpu.NewPipelined(core)
		} else {
			mdl = cpu.NewAtomic(core)
		}
		for mdl.Step() {
		}
		if uint64(len(pcs)) != core.Insts {
			t.Errorf("pipelined=%v: traced %d of %d commits", pipelined, len(pcs), core.Insts)
		}
		// First commit is the first instruction of _start.
		if len(pcs) > 0 && pcs[0] != 0x10000 {
			t.Errorf("pipelined=%v: first traced pc = %#x", pipelined, pcs[0])
		}
	}
}
