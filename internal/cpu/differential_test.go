package cpu_test

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// TestDifferentialRandomPrograms generates random (structurally valid)
// guest programs and requires that the atomic, timing and pipelined
// models agree bit-exactly on the final architectural state. This is the
// strongest cross-check we have that speculation, forwarding, stalls and
// squashes in the pipelined model are semantically invisible.
func TestDifferentialRandomPrograms(t *testing.T) {
	const programs = 60
	for seed := int64(0); seed < programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog, err := randomProgram(rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		type final struct {
			arch  cpu.Arch
			insts uint64
			exit  int
			trap  cpu.TrapKind
		}
		var results [3]final
		for mi, model := range models {
			m := mem.New()
			core := &cpu.Core{Name: "cpu", Mem: m}
			k := kernel.New(m)
			if err := k.Boot(core, prog); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			var mdl cpu.Model
			switch model {
			case "atomic":
				mdl = cpu.NewAtomic(core)
			case "timing":
				core.Hier = mem.NewHierarchy(mem.DefaultHierarchyConfig())
				mdl = cpu.NewTiming(core)
			default:
				core.Hier = mem.NewHierarchy(mem.DefaultHierarchyConfig())
				mdl = cpu.NewPipelined(core)
			}
			for i := 0; i < 5_000_000 && mdl.Step(); i++ {
			}
			if !core.Stopped {
				t.Fatalf("seed %d model %s: did not stop", seed, model)
			}
			f := final{arch: core.Arch, insts: core.Insts, exit: core.ExitStatus}
			if core.Trap != nil {
				f.trap = core.Trap.Kind
			}
			results[mi] = f
		}
		for mi := 1; mi < 3; mi++ {
			a, b := results[0], results[mi]
			if a.trap != b.trap || a.exit != b.exit || a.insts != b.insts {
				t.Fatalf("seed %d: %s diverged from atomic: trap %v/%v exit %d/%d insts %d/%d",
					seed, models[mi], a.trap, b.trap, a.exit, b.exit, a.insts, b.insts)
			}
			if a.trap != cpu.TrapNone {
				continue // trap PCs match; register file comparison below needs clean exit
			}
			for r := 0; r < isa.NumRegs; r++ {
				if a.arch.R[r] != b.arch.R[r] {
					t.Fatalf("seed %d: %s R[%d] = %#x, atomic %#x", seed, models[mi], r, b.arch.R[r], a.arch.R[r])
				}
			}
		}
	}
}

// randomProgram emits a random but well-formed program: arithmetic over
// initialized registers, data-dependent short branches (always forward,
// so the program cannot hang), loads/stores within a scratch buffer, and
// a clean exit. Division is emitted with a nonzero-or-fixed divisor so
// arithmetic traps stay rare but possible.
func randomProgram(rng *rand.Rand) (*asm.Program, error) {
	b := asm.NewBuilder()
	b.Label("_start")
	// Initialize a few registers deterministically from the seed stream.
	for r := isa.Reg(1); r <= 8; r++ {
		b.LoadImm(r, rng.Int63n(1<<30)-(1<<29))
	}
	b.LA(isa.RegS0, "scratch") // s0 = scratch base

	ops := []func(i int){
		func(i int) { // ALU register form
			fns := []struct {
				op isa.Opcode
				fn uint16
			}{
				{isa.OpIntArith, isa.FnADDQ}, {isa.OpIntArith, isa.FnSUBQ},
				{isa.OpIntLogic, isa.FnAND}, {isa.OpIntLogic, isa.FnBIS},
				{isa.OpIntLogic, isa.FnXOR}, {isa.OpIntMul, isa.FnMULQ},
				{isa.OpIntArith, isa.FnCMPLT}, {isa.OpIntArith, isa.FnCMPEQ},
			}
			f := fns[rng.Intn(len(fns))]
			b.Op(f.op, f.fn, reg8(rng), reg8(rng), reg8(rng))
		},
		func(i int) { // ALU literal form
			fns := []struct {
				op isa.Opcode
				fn uint16
			}{
				{isa.OpIntArith, isa.FnADDQ}, {isa.OpIntShift, isa.FnSLL},
				{isa.OpIntShift, isa.FnSRL}, {isa.OpIntShift, isa.FnSRA},
			}
			f := fns[rng.Intn(len(fns))]
			lit := rng.Int63n(64)
			b.OpLit(f.op, f.fn, reg8(rng), lit, reg8(rng))
		},
		func(i int) { // store then load within the scratch buffer
			off := int32(rng.Intn(32)) * 8
			b.Mem(isa.OpSTQ, reg8(rng), isa.RegS0, off)
			b.Mem(isa.OpLDQ, reg8(rng), isa.RegS0, off)
		},
		func(i int) { // data-dependent forward branch over one instruction
			cond := []isa.Opcode{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE}
			label := labelFor(i)
			b.Br(cond[rng.Intn(len(cond))], reg8(rng), label)
			b.Op(isa.OpIntArith, isa.FnADDQ, reg8(rng), reg8(rng), reg8(rng))
			b.Label(label)
		},
		func(i int) { // guarded division (traps only if the guard register is 0 at runtime: never, because we or-in 1)
			d := reg8(rng)
			b.OpLit(isa.OpIntLogic, isa.FnBIS, d, 1, d) // ensure nonzero
			b.Op(isa.OpIntMul, isa.FnDIVQ, reg8(rng), d, reg8(rng))
		},
	}
	n := 30 + rng.Intn(120)
	for i := 0; i < n; i++ {
		ops[rng.Intn(len(ops))](i)
	}
	// Exit with a checksum folded into 8 bits.
	b.Op(isa.OpIntLogic, isa.FnXOR, 1, 2, isa.RegA0)
	b.OpLit(isa.OpIntLogic, isa.FnAND, isa.RegA0, 255, isa.RegA0)
	b.LoadImm(isa.RegV0, int64(isa.SysExit))
	b.Pal(isa.PalCallSys)
	b.Space("scratch", 256)
	return b.Build()
}

func reg8(rng *rand.Rand) isa.Reg { return isa.Reg(1 + rng.Intn(8)) }

var labelCounter int

func labelFor(i int) string {
	labelCounter++
	return "L" + itoa(labelCounter)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
