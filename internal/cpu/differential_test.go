package cpu_test

import (
	"flag"
	"fmt"
	"testing"

	"repro/internal/conformance"
)

// Differential testing now delegates to internal/conformance, which
// generates programs over all four instruction formats (integer ALU, FP,
// memory, branches/call/return) and compares full architectural state —
// including FP registers, memory image and console — at sync intervals,
// not just at exit.
//
// Seeds are fixed so failures are always reproducible; -fuzzseed narrows
// the run to a single reported seed.
var (
	diffSeed = flag.Int64("fuzzseed", -1, "run the differential test with this single seed")
	diffN    = flag.Int("fuzzn", 30, "number of fixed seeds for the differential test")
)

// TestDifferentialRandomPrograms requires that the atomic, timing and
// pipelined models agree bit-exactly on architectural state every 64
// committed instructions and on the complete final state. This is the
// strongest cross-check we have that speculation, forwarding, stalls and
// squashes in the pipelined model are semantically invisible.
func TestDifferentialRandomPrograms(t *testing.T) {
	seeds := make([]int64, 0, *diffN)
	if *diffSeed >= 0 {
		seeds = append(seeds, *diffSeed)
	} else {
		for i := 0; i < *diffN; i++ {
			seeds = append(seeds, int64(1000+i))
		}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			p := conformance.Generate(seed, conformance.GenConfig{})
			prog, err := p.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			d, err := conformance.RunLockstep(prog, conformance.Config{SyncInterval: 64})
			if err != nil {
				t.Fatalf("lockstep: %v", err)
			}
			if d != nil {
				t.Fatalf("models diverged (reproduce with -fuzzseed %d):\n%s", seed, d.Report())
			}
		})
	}
}
