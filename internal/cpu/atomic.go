package cpu

import "repro/internal/isa"

// AtomicModel is the functional CPU model: one instruction per step, one
// tick per instruction (gem5's "atomic simple"). With Timing set it also
// charges cache/memory latencies to the tick counter (gem5's "timing
// simple").
type AtomicModel struct {
	C      *Core
	Timing bool

	out ExecOut // scratch execute-stage output (avoids per-step escapes)
}

var _ Model = (*AtomicModel)(nil)

// NewAtomic returns the functional model for core c.
func NewAtomic(c *Core) *AtomicModel { return &AtomicModel{C: c} }

// NewTiming returns the functional model with memory timing for core c.
func NewTiming(c *Core) *AtomicModel { return &AtomicModel{C: c, Timing: true} }

// ModelName implements Model.
func (m *AtomicModel) ModelName() string {
	if m.Timing {
		return "timing"
	}
	return "atomic"
}

// Drain implements Model; the atomic model holds no speculative state.
func (m *AtomicModel) Drain() {}

// Step executes one instruction to completion. When every per-step
// observer is inactive — no trace, no profiler, no taint sink, no
// flight recorder, and the fault-injection window closed — it runs the
// specialized fast step,
// which elides all hook dispatch behind this single check. The two paths
// produce bit-identical architectural state (enforced by the conformance
// suite); DisableFastPath pins the slow path for reference runs.
func (m *AtomicModel) Step() bool {
	c := m.C
	if c.TraceFn == nil && c.Prof == nil && c.Taint == nil && c.Flight == nil &&
		!c.DisableFastPath && (c.FI == nil || !c.FI.Enabled()) {
		// Translated blocks run only under the same predicate that admits
		// stepFast, and never when cache timing matters (the timing model
		// charges per-access latencies a fused block cannot reproduce).
		if c.BBT != nil && !m.Timing {
			if c.BBT.Exec() {
				return !c.Stopped
			}
		}
		return m.stepFast()
	}
	if c.BBT != nil {
		c.BBT.NoteFallback()
	}
	return m.stepSlow()
}

// stepFast is Step with the disabled observers structurally removed: no
// FI stage hooks, no per-tick engine callback, no trace/profile/taint/
// flight dispatch, and the commit epilogue inlined down to the PAL and
// scheduler work that can still occur. The engine tick clock is synced
// immediately before PAL dispatch so fi_activate_inst anchors its
// tick-relative fault window at exactly the value the slow path would
// have delivered.
func (m *AtomicModel) stepFast() bool {
	c := m.C
	if c.Stopped {
		return false
	}
	pc := c.Arch.PC
	seq := c.NextSeq()
	c.Ticks++
	tickAtFetch := c.Ticks // what the slow path's OnTick would report

	// Fetch + decode, via the per-PC predecode cache when possible.
	var (
		in    isa.Inst
		ports isa.RegPorts
	)
	if e := c.predecodeLookup(pc); e != nil {
		in, ports = e.in, e.ports
		if m.Timing && c.Hier != nil {
			lat, _ := c.Hier.FetchAccess(pc)
			c.Ticks += lat - 1
		}
	} else {
		if pc%4 != 0 {
			c.stop(&Trap{Kind: TrapFetchFault, PC: pc})
			return false
		}
		word, err := c.Mem.Read32(pc)
		if err != nil {
			c.stop(&Trap{Kind: TrapFetchFault, PC: pc})
			return false
		}
		if m.Timing && c.Hier != nil {
			lat, _ := c.Hier.FetchAccess(pc)
			c.Ticks += lat - 1
		}
		in, ports = c.decode(word)
		c.predecodeFill(pc, word, in, ports)
	}

	// Execute.
	a, b, fa, fb := c.readOperands(in, ports)
	m.out = Execute(in, a, b, fa, fb, pc)
	out := &m.out
	if out.TrapKind != TrapNone {
		c.stop(&Trap{Kind: out.TrapKind, PC: pc, Word: in.Raw})
		return false
	}

	// Memory.
	var loadVal uint64
	if in.Kind.IsMem() {
		val, lat, trap := c.accessMem(seq, pc, in, out, false)
		if trap != nil {
			trap.PC = pc
			c.stop(trap)
			return false
		}
		if m.Timing {
			c.Ticks += lat
		}
		loadVal = val
	}

	// Writeback and next PC.
	c.writeback(in, ports, *out, loadVal)
	if in.Kind.IsBranch() && out.Taken {
		c.Arch.PC = out.Target
	} else {
		c.Arch.PC = pc + 4
	}

	// Commit epilogue, minus the hooks known inactive. PAL instructions
	// are rare; everything below the Insts++ is off the common path.
	c.Insts++
	if in.Format == isa.FormatPAL && in.Kind != isa.KindNop {
		if c.FI != nil {
			c.FI.OnTick(tickAtFetch)
		}
		switch in.Kind {
		case isa.KindFIActivate:
			if c.FI != nil {
				c.FI.OnActivate(c.Arch.PCBB, int(int64(c.Arch.ReadReg(isa.RegA0))))
			}
		case isa.KindFIInit:
			if c.OnCheckpoint != nil {
				c.OnCheckpoint()
			}
		default:
			if c.Pal == nil {
				c.stop(&Trap{Kind: TrapIllegal, PC: c.Arch.PC, Word: in.Raw})
				return false
			}
			pcbbBefore := c.Arch.PCBB
			action, err := c.Pal.HandlePal(c, in.Kind)
			if err != nil {
				c.stop(&Trap{Kind: TrapKernel, PC: c.Arch.PC, Word: in.Raw})
				return false
			}
			if action == PalStop {
				c.Stopped = true
				return false
			}
			if c.Arch.PCBB != pcbbBefore && c.FI != nil {
				c.FI.OnContextSwitch(c.Arch.PCBB)
			}
		}
	}
	// fi_activate_inst may have just opened the window: the activating
	// instruction itself gets the commit hook, exactly as in the slow
	// path's epilogue ordering.
	if c.FI != nil && c.FI.Enabled() {
		c.FI.OnCommit(seq, pc, &c.Arch)
	}
	if c.Sched != nil {
		pcbbBefore := c.Arch.PCBB
		if c.Sched.MaybeSwitch(c) {
			if c.Arch.PCBB != pcbbBefore && c.FI != nil {
				c.FI.OnContextSwitch(c.Arch.PCBB)
			}
		}
	}
	return !c.Stopped
}

// stepSlow executes one instruction with every hook point live.
func (m *AtomicModel) stepSlow() bool {
	c := m.C
	if c.Stopped {
		return false
	}
	pc := c.Arch.PC
	seq := c.NextSeq()
	c.Ticks++
	if c.FI != nil {
		c.FI.OnTick(c.Ticks)
	}

	// Fetch.
	fi := c.fiEnabled()
	var (
		in    isa.Inst
		ports isa.RegPorts
	)
	if e := c.predecodeLookup(pc); e != nil && !fi {
		// Predecode hit (only consulted outside the FI window: fetch and
		// decode faults must see the real fetch path).
		in, ports = e.in, e.ports
		if m.Timing && c.Hier != nil {
			lat, miss := c.Hier.FetchAccess(pc)
			c.Ticks += lat - 1
			if miss && c.Prof != nil {
				c.Prof.OnIMiss(pc)
			}
		}
	} else {
		if pc%4 != 0 {
			c.stop(&Trap{Kind: TrapFetchFault, PC: pc})
			return false
		}
		word, err := c.Mem.Read32(pc)
		if err != nil {
			c.stop(&Trap{Kind: TrapFetchFault, PC: pc})
			return false
		}
		if m.Timing && c.Hier != nil {
			lat, miss := c.Hier.FetchAccess(pc)
			c.Ticks += lat - 1
			if miss && c.Prof != nil {
				c.Prof.OnIMiss(pc)
			}
		}
		if fi {
			word = c.FI.OnFetch(seq, pc, word)
		}

		// Decode.
		in, ports = c.decode(word)
		if fi {
			ports = c.FI.OnDecode(seq, pc, ports)
		} else {
			c.predecodeFill(pc, word, in, ports)
		}
	}

	// Execute.
	a, b, fa, fb := c.readOperands(in, ports)
	m.out = Execute(in, a, b, fa, fb, pc)
	out := &m.out
	if fi {
		c.FI.OnExecute(seq, pc, in, out)
	}
	if out.TrapKind != TrapNone {
		c.stop(&Trap{Kind: out.TrapKind, PC: pc, Word: in.Raw})
		return false
	}

	// Memory.
	var loadVal uint64
	if in.Kind.IsMem() {
		val, lat, trap := c.accessMem(seq, pc, in, out, fi)
		if trap != nil {
			trap.PC = pc
			c.stop(trap)
			return false
		}
		if m.Timing {
			c.Ticks += lat
		}
		loadVal = val
	}

	// Writeback and next PC.
	c.writeback(in, ports, *out, loadVal)
	if in.Kind.IsBranch() && out.Taken {
		c.Arch.PC = out.Target
	} else {
		c.Arch.PC = pc + 4
	}

	if c.TraceFn != nil {
		c.TraceFn(pc, in)
	}
	if c.Prof != nil {
		c.profileCommit(pc, in, out)
	}
	red := c.commitEpilogue(seq, pc, in, ports, out, loadVal, fi)
	if red.stopped {
		return false
	}
	// The atomic model always resumes from the architectural PC, so a
	// redirect needs no extra work.
	return !c.Stopped
}
