package cpu

// AtomicModel is the functional CPU model: one instruction per step, one
// tick per instruction (gem5's "atomic simple"). With Timing set it also
// charges cache/memory latencies to the tick counter (gem5's "timing
// simple").
type AtomicModel struct {
	C      *Core
	Timing bool

	out ExecOut // scratch execute-stage output (avoids per-step escapes)
}

var _ Model = (*AtomicModel)(nil)

// NewAtomic returns the functional model for core c.
func NewAtomic(c *Core) *AtomicModel { return &AtomicModel{C: c} }

// NewTiming returns the functional model with memory timing for core c.
func NewTiming(c *Core) *AtomicModel { return &AtomicModel{C: c, Timing: true} }

// ModelName implements Model.
func (m *AtomicModel) ModelName() string {
	if m.Timing {
		return "timing"
	}
	return "atomic"
}

// Drain implements Model; the atomic model holds no speculative state.
func (m *AtomicModel) Drain() {}

// Step executes one instruction to completion.
func (m *AtomicModel) Step() bool {
	c := m.C
	if c.Stopped {
		return false
	}
	pc := c.Arch.PC
	seq := c.NextSeq()
	c.Ticks++
	if c.FI != nil {
		c.FI.OnTick(c.Ticks)
	}

	// Fetch.
	if pc%4 != 0 {
		c.stop(&Trap{Kind: TrapFetchFault, PC: pc})
		return false
	}
	word, err := c.Mem.Read32(pc)
	if err != nil {
		c.stop(&Trap{Kind: TrapFetchFault, PC: pc})
		return false
	}
	if m.Timing && c.Hier != nil {
		lat, miss := c.Hier.FetchAccess(pc)
		c.Ticks += lat - 1 // the base tick is already counted
		if miss && c.Prof != nil {
			c.Prof.OnIMiss(pc)
		}
	}
	fi := c.fiEnabled()
	if fi {
		word = c.FI.OnFetch(seq, pc, word)
	}

	// Decode.
	in := decodeWord(word)
	ports := in.Ports()
	if fi {
		ports = c.FI.OnDecode(seq, pc, ports)
	}

	// Execute.
	a, b, fa, fb := c.readOperands(in, ports)
	m.out = Execute(in, a, b, fa, fb, pc)
	out := &m.out
	if fi {
		c.FI.OnExecute(seq, pc, in, out)
	}
	if out.TrapKind != TrapNone {
		c.stop(&Trap{Kind: out.TrapKind, PC: pc, Word: in.Raw})
		return false
	}

	// Memory.
	var loadVal uint64
	if in.Kind.IsMem() {
		val, lat, trap := c.accessMem(seq, pc, in, out, fi)
		if trap != nil {
			trap.PC = pc
			c.stop(trap)
			return false
		}
		if m.Timing {
			c.Ticks += lat
		}
		loadVal = val
	}

	// Writeback and next PC.
	c.writeback(in, ports, *out, loadVal)
	if in.Kind.IsBranch() && out.Taken {
		c.Arch.PC = out.Target
	} else {
		c.Arch.PC = pc + 4
	}

	if c.TraceFn != nil {
		c.TraceFn(pc, in)
	}
	if c.Prof != nil {
		c.profileCommit(pc, in, out)
	}
	red := c.commitEpilogue(seq, pc, in, ports, out, loadVal, fi)
	if red.stopped {
		return false
	}
	// The atomic model always resumes from the architectural PC, so a
	// redirect needs no extra work.
	return !c.Stopped
}
