package cpu

import "repro/internal/obs"

// RegisterMetrics exposes the core's architectural counters as
// pull-collectors on r. The commit loop keeps incrementing its plain
// fields (Insts, Ticks) and pays nothing for the registration: values are
// read only when the registry is dumped — the same split gem5's Stats
// framework uses between counter storage and stat visitation.
func (c *Core) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.RegisterFunc("cpu.insts", func() float64 { return float64(c.Insts) })
	r.RegisterFunc("cpu.ticks", func() float64 { return float64(c.Ticks) })
	r.RegisterFunc("cpu.seq", func() float64 { return float64(c.seq) })
}

// RegisterMetrics exposes the pipelined model's speculation counters.
func (m *PipelinedModel) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.RegisterFunc("cpu.squashes", func() float64 { return float64(m.Squashes) })
	r.RegisterFunc("cpu.branch.mispredicts", func() float64 { return float64(m.Pred.Mispredicts) })
	r.RegisterFunc("cpu.pipeline.inflight", func() float64 { return float64(m.InFlight()) })
}
