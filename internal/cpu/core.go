package cpu

import (
	"math"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prof"
)

// Injector is the set of per-stage hook points the fault injection engine
// plugs into (Fig. 1 of the paper: the red components are the possible
// fault locations). A nil Injector on the Core disables fault injection
// entirely, which models the unmodified ("vanilla gem5") simulator used as
// the baseline in the paper's Fig. 7 overhead study.
//
// Hooks receive the dynamic sequence number of the instruction so the
// engine can later learn whether that instruction committed or was
// squashed (speculative execution in the pipelined model), plus the
// instruction's PC so injections can be attributed to guest code
// (per-PC outcome attribution in the profiler/campaign reports).
type Injector interface {
	// Enabled reports whether the currently running thread has activated
	// fault injection; when false the models skip every other hook — the
	// paper's per-tick fast path.
	Enabled() bool

	// OnFetch may corrupt the fetched instruction word.
	OnFetch(seq, pc uint64, word uint32) uint32
	// OnDecode may corrupt the register selection produced by decode.
	OnDecode(seq, pc uint64, ports isa.RegPorts) isa.RegPorts
	// OnExecute may corrupt the execute-stage output in place.
	OnExecute(seq, pc uint64, in isa.Inst, out *ExecOut)
	// OnMem may corrupt the value of a load (after reading) or a store
	// (before writing); bus reports whether the transaction crossed the
	// processor/memory interconnect (L1 miss), which is where
	// interconnect faults strike.
	OnMem(seq, pc uint64, load bool, addr uint64, val uint64, bus bool) uint64
	// OnCommit is called once per committed instruction. It advances the
	// per-thread instruction counter and applies pending register, special
	// register and PC faults by direct state mutation. It returns true if
	// it changed the PC (the pipeline must flush and redirect).
	OnCommit(seq, pc uint64, a *Arch) bool
	// OnSquash reports that a speculative instruction was squashed.
	OnSquash(seq uint64)
	// OnRegRead / OnRegWrite record committed register file traffic for
	// fault propagation tracking (non-propagated outcome detection).
	OnRegRead(fp bool, r isa.Reg)
	OnRegWrite(fp bool, r isa.Reg)
	// OnActivate handles the fi_activate_inst(id) pseudo-instruction.
	OnActivate(pcbb uint64, id int)
	// OnContextSwitch tells the engine the PCB base register changed.
	OnContextSwitch(pcbb uint64)
	// OnTick advances the engine's tick count (cycle-based fault timing).
	OnTick(ticks uint64)
}

// TaintSink observes the architectural instruction stream for dataflow
// tracking: one call per committed instruction (with the decoded form,
// register ports, execute-stage output and load value at hand) and one per
// squashed speculative instruction. Unlike Injector hooks it is not gated
// on the fault-injection window, because propagated corruption must be
// followed past the window's close (program output happens after
// fi_activate_inst toggles FI off). A nil sink costs one untaken branch
// per commit — the same disabled-path guarantee as TraceFn and Prof.
type TaintSink interface {
	// OnCommitInst is called after writeback, with the architectural PC
	// already advanced, and before PAL dispatch (so syscall argument
	// registers still hold their values).
	OnCommitInst(seq, pc uint64, in isa.Inst, ports isa.RegPorts, out *ExecOut, loadVal uint64, a *Arch)
	// OnSquash reports that a speculative instruction was squashed; any
	// provisional propagation state keyed on seq must be discarded.
	OnSquash(seq uint64)
}

// FlightSink records the committed instruction stream into a bounded
// flight-recorder ring for post-mortem reconstruction: one call per
// committed instruction with the decoded form, register ports,
// execute-stage output, load value and tick clock at hand, and one per
// squashed speculative instruction. Like TaintSink it is not gated on
// the fault-injection window — the final K instructions before a crash
// may lie well past fi_activate_inst. A nil sink costs one untaken
// branch per commit, the same disabled-path guarantee as TraceFn, Prof
// and Taint.
type FlightSink interface {
	// OnCommitInst is called at the same site as TaintSink.OnCommitInst:
	// after writeback, with the architectural PC already advanced, and
	// before PAL dispatch.
	OnCommitInst(seq, pc uint64, in isa.Inst, ports isa.RegPorts, out *ExecOut, loadVal uint64, tick uint64, a *Arch)
	// OnSquash reports that a speculative instruction was squashed; a
	// squashed instruction never committed and must not appear in the
	// post-mortem timeline.
	OnSquash(seq uint64)
}

// Scheduler is consulted after every committed instruction; the kernel
// implements it to preempt the running thread. A context switch mutates
// core.Arch (including PCBB) and returns true, upon which the core
// notifies the injector and pipelined models flush.
type Scheduler interface {
	MaybeSwitch(c *Core) bool
}

// BatchScheduler extends Scheduler with batch accounting for block
// execution: SliceBudget reports how many commits the running thread is
// guaranteed before MaybeSwitch could preempt it, and ConsumeSlice
// charges a batch of commits in one call with the same arithmetic as n
// individual MaybeSwitch calls that all declined to switch. A block
// runner only admits a block whose length fits strictly inside the
// budget; a scheduler that cannot batch disables block execution.
type BatchScheduler interface {
	Scheduler
	SliceBudget() uint64
	ConsumeSlice(n uint64)
}

// BlockRunner executes translated basic blocks for the atomic model
// (internal/bbt implements it). Exec runs zero or more whole blocks
// starting at the architectural PC and reports whether any guest
// instruction was executed; NoteFallback counts a slow-path step taken
// while a runner is attached, making window-open/observer bailouts
// observable.
type BlockRunner interface {
	Exec() bool
	NoteFallback()
}

// PalAction is what the PAL handler asks the core to do after a PAL
// instruction commits.
type PalAction int

// PAL actions.
const (
	PalContinue PalAction = iota + 1
	PalStop               // end the simulation (exit status in Core.ExitStatus)
)

// PalHandler executes PAL-format instructions that reach commit: the
// kernel implements syscalls and halt.
type PalHandler interface {
	HandlePal(c *Core, kind isa.Kind) (PalAction, error)
}

// Model is a CPU model: it advances the simulation by its natural
// granularity (one instruction for atomic/timing, one cycle for the
// pipelined model).
type Model interface {
	// Step advances the simulation. It returns false when the core has
	// stopped (program exit or trap); inspect Core.Trap / Core.ExitStatus.
	Step() bool
	// Drain runs the model until no speculative state is in flight
	// (pipelined models complete or squash in-flight instructions). Used
	// before switching CPU models mid-simulation.
	Drain()
	// ModelName identifies the model ("atomic", "timing", "pipelined").
	ModelName() string
}

// Core bundles the architectural state with its memory system, kernel and
// fault injection hooks. CPU models operate on a Core.
type Core struct {
	Name string // e.g. "system.cpu0" — matched against fault descriptions

	Arch  Arch
	Mem   *mem.Memory
	Hier  *mem.Hierarchy // nil: no cache timing (pure functional)
	FI    Injector       // nil: fault injection disabled (vanilla simulator)
	Pal   PalHandler
	Sched Scheduler // optional

	// OnCheckpoint is invoked when the guest executes fi_read_init_all()
	// (the paper's checkpoint-here pseudo-instruction). May be nil.
	OnCheckpoint func()

	// TraceFn, when set, is called for every committed instruction with
	// its PC and decoded form — the execution trace used for postmortem
	// fault correlation. Costs one call per instruction; leave nil for
	// measurement runs.
	TraceFn func(pc uint64, in isa.Inst)

	// Prof, when set, receives per-PC profiling events (commits, cache
	// misses, mispredicts, stalls, call/return edges). Every hook site
	// is behind a nil check, so a nil profiler costs one untaken branch
	// per event class — the same disabled-path guarantee as TraceFn.
	Prof *prof.Profiler

	// Taint, when set, receives the committed instruction stream (and
	// pipeline squashes) for fault-propagation taint tracking.
	Taint TaintSink

	// Flight, when set, receives the committed instruction stream (and
	// pipeline squashes) for flight-recorder post-mortems.
	Flight FlightSink

	// BBT, when set, executes translated basic blocks on the atomic
	// model's fast path (gem5/QEMU-style block translation). It is only
	// consulted when the fast-path predicate already holds, so every
	// condition that forces the slow path also disables translation.
	BBT BlockRunner

	// DisableFastPath forces the models onto their fully-hooked slow
	// paths and bypasses the decoded-instruction caches. Used by
	// conformance tests as the reference configuration the fast paths
	// must match bit for bit.
	DisableFastPath bool

	Ticks uint64 // simulation ticks (cycles)
	Insts uint64 // committed instructions

	Stopped    bool
	ExitStatus int
	Trap       *Trap

	seq    uint64 // dynamic instruction sequence numbering
	dcache *isa.DecodeCache
	pred   *predecodeCache
}

// CoreSnapshot is the checkpointable part of a core: the architectural
// state and counters. Microarchitectural state (pipeline latches, branch
// predictor) is deliberately excluded — checkpoints are taken at
// serialization points where the pipeline is drained, exactly like the
// paper's checkpoint-at-fi_read_init_all flow.
type CoreSnapshot struct {
	Arch       Arch
	Ticks      uint64
	Insts      uint64
	Seq        uint64
	ExitStatus int
}

// Snapshot captures the core's architectural state.
func (c *Core) Snapshot() CoreSnapshot {
	return CoreSnapshot{Arch: c.Arch, Ticks: c.Ticks, Insts: c.Insts, Seq: c.seq, ExitStatus: c.ExitStatus}
}

// RestoreSnapshot replaces the core's architectural state and clears any
// stop/trap condition.
func (c *Core) RestoreSnapshot(s CoreSnapshot) {
	c.Arch = s.Arch
	c.Ticks = s.Ticks
	c.Insts = s.Insts
	c.seq = s.Seq
	c.ExitStatus = s.ExitStatus
	c.Stopped = false
	c.Trap = nil
}

// decode decodes an instruction word through the per-core word-keyed
// decoded-instruction cache (gem5's decode-cache idiom). The key is the
// raw word, so fetch-fault corruption is naturally safe: a flipped bit is
// a different key. DisableFastPath falls back to a cold decode.
func (c *Core) decode(w uint32) (isa.Inst, isa.RegPorts) {
	if c.DisableFastPath {
		in := isa.Decode(isa.Word(w))
		return in, in.Ports()
	}
	if c.dcache == nil {
		c.dcache = isa.NewDecodeCache()
	}
	return c.dcache.Decode(isa.Word(w))
}

// The per-PC predecode cache skips fetch and decode entirely for
// straight-line re-execution of text. Unlike the word-keyed cache it is
// keyed on the PC, so it must observe writes to the text section: every
// entry records the Memory text generation it was filled at, and any
// store overlapping the text region (guest stores, store-value faults
// landing in text, checkpoint restores) bumps the generation and thereby
// invalidates all entries at once. Entries are filled and consulted only
// while fault injection is inactive — fetch faults are transient
// corruptions of a single fetch and must be neither served from nor
// captured into a PC-keyed cache.
const (
	predecodeBits     = 12 // 4096 direct-mapped entries
	predecodeMask     = 1<<predecodeBits - 1
	predecodeTagValid = uint64(1) << 63
)

type predecodeEntry struct {
	tag   uint64 // pc | predecodeTagValid
	gen   uint64 // mem.TextGen at fill time
	word  uint32
	in    isa.Inst
	ports isa.RegPorts
}

type predecodeCache struct {
	entries [1 << predecodeBits]predecodeEntry
}

// predecodeLookup returns the cached predecode for pc, or nil. Callers
// must only consult it when FI hooks are inactive for the fetch.
func (c *Core) predecodeLookup(pc uint64) *predecodeEntry {
	if c.pred == nil || c.DisableFastPath {
		return nil
	}
	e := &c.pred.entries[(pc>>2)&predecodeMask]
	if e.tag == pc|predecodeTagValid && e.gen == c.Mem.TextGen() {
		return e
	}
	return nil
}

// predecodeFill caches the decode of the instruction at pc. Only PCs
// inside the declared text region are cached: a corrupted PC can point
// anywhere, and data pages have no invalidation tracking.
func (c *Core) predecodeFill(pc uint64, word uint32, in isa.Inst, ports isa.RegPorts) {
	if c.DisableFastPath {
		return
	}
	lo, hi := c.Mem.TextRegion()
	if pc < lo || pc >= hi {
		return
	}
	if c.pred == nil {
		c.pred = new(predecodeCache)
	}
	e := &c.pred.entries[(pc>>2)&predecodeMask]
	*e = predecodeEntry{tag: pc | predecodeTagValid, gen: c.Mem.TextGen(), word: word, in: in, ports: ports}
}

// NextSeq allocates the next dynamic instruction sequence number.
func (c *Core) NextSeq() uint64 {
	c.seq++
	return c.seq
}

// BumpSeq advances the sequence counter by n in one call — the batch
// equivalent of n NextSeq allocations, used by translated-block commits.
func (c *Core) BumpSeq(n uint64) { c.seq += n }

// fiEnabled reports whether FI hooks should run for the current thread.
func (c *Core) fiEnabled() bool { return c.FI != nil && c.FI.Enabled() }

// Stop halts the core with a trap; used by the models for architectural
// traps and by the kernel for fatal conditions (e.g. a corrupted PCB).
func (c *Core) Stop(t *Trap) {
	c.Trap = t
	c.Stopped = true
}

// stop is the internal alias of Stop.
func (c *Core) stop(t *Trap) { c.Stop(t) }

// readOperands reads the register operands for an instruction through the
// (possibly fault-corrupted) ports.
func (c *Core) readOperands(in isa.Inst, p isa.RegPorts) (a, b uint64, fa, fb float64) {
	if p.SrcAUsed {
		if p.SrcAFP {
			fa = c.Arch.ReadFReg(p.SrcA)
		} else {
			a = c.Arch.ReadReg(p.SrcA)
		}
	}
	if p.SrcBUsed {
		if p.SrcBFP {
			fb = c.Arch.ReadFReg(p.SrcB)
		} else {
			b = c.Arch.ReadReg(p.SrcB)
		}
	}
	// FP operate instructions carry both operands in the F file; integer
	// literal forms substitute the literal for operand B.
	if in.Format == isa.FormatFP {
		fa = c.Arch.ReadFReg(p.SrcA)
		fb = c.Arch.ReadFReg(p.SrcB)
	}
	if in.IsLit {
		b = uint64(in.Lit)
	}
	return a, b, fa, fb
}

// accessMem performs the memory stage of a load/store, applying cache
// timing (if configured) and the FI memory hook. It returns the loaded
// value (for loads) and the latency in ticks. pc is the requesting
// instruction's address, for injection and miss attribution.
func (c *Core) accessMem(seq, pc uint64, in isa.Inst, o *ExecOut, fi bool) (loadVal uint64, latency uint64, trap *Trap) {
	size := 8
	if in.Kind == isa.KindLDBU || in.Kind == isa.KindSTB {
		size = 1
	}
	if size == 8 && o.EA%8 != 0 {
		return 0, 0, &Trap{Kind: TrapUnaligned, Addr: o.EA, Word: in.Raw}
	}
	// Without a cache model every access crosses the interconnect; with
	// one, only L1 misses do.
	bus := true
	if c.Hier != nil {
		var miss bool
		latency, miss = c.Hier.DataAccess(o.EA, in.Kind.IsStore())
		bus = miss
		if miss && c.Prof != nil {
			c.Prof.OnDMiss(pc)
		}
	}
	if in.Kind.IsStore() {
		val := o.StoreVal
		if fi {
			val = c.FI.OnMem(seq, pc, false, o.EA, val, bus)
		}
		var err error
		if size == 1 {
			err = c.Mem.StoreByte(o.EA, byte(val))
		} else {
			err = c.Mem.Write64(o.EA, val)
		}
		if err != nil {
			return 0, latency, &Trap{Kind: TrapMemFault, Addr: o.EA, Word: in.Raw}
		}
		return 0, latency, nil
	}
	var (
		val uint64
		err error
	)
	if size == 1 {
		var b byte
		b, err = c.Mem.LoadByte(o.EA)
		val = uint64(b)
	} else {
		val, err = c.Mem.Read64(o.EA)
	}
	if err != nil {
		return 0, latency, &Trap{Kind: TrapMemFault, Addr: o.EA, Word: in.Raw}
	}
	if fi {
		val = c.FI.OnMem(seq, pc, true, o.EA, val, bus)
	}
	return val, latency, nil
}

// profileCommit feeds the profiler at a model's commit point: per-PC
// instruction/cycle accounting, the shadow-call-stack sample, and the
// call/return edges that maintain it. Callers must have checked
// c.Prof != nil.
func (c *Core) profileCommit(pc uint64, in isa.Inst, o *ExecOut) {
	c.Prof.OnCommit(pc, c.Ticks)
	c.Prof.OnStackSample(pc)
	switch {
	case in.Kind == isa.KindBSR && o.Taken:
		c.Prof.OnCall(o.Target)
	case in.Kind == isa.KindJMP && in.Hint == isa.HintJSR:
		c.Prof.OnCall(o.Target)
	case in.Kind == isa.KindJMP && in.Hint == isa.HintRET:
		c.Prof.OnReturn()
	}
}

// writeback writes the destination register of a completed instruction.
func (c *Core) writeback(in isa.Inst, p isa.RegPorts, o ExecOut, loadVal uint64) {
	if !p.DstUsed {
		return
	}
	if p.DstFP {
		v := o.FpRes
		if in.Kind == isa.KindLDT {
			v = math.Float64frombits(loadVal)
		}
		c.Arch.WriteFReg(p.Dst, v)
		return
	}
	v := o.IntRes
	if in.Kind.IsLoad() {
		v = loadVal
	}
	c.Arch.WriteReg(p.Dst, v)
}

// commitRedirect is the result of commitEpilogue: whether the front end
// must be redirected (kernel switch, PAL serialization, FI PC fault) and
// to where.
type commitRedirect struct {
	redirect bool
	target   uint64
	stopped  bool
}

// commitEpilogue runs the per-committed-instruction bookkeeping shared by
// all models: FI commit hook and register-traffic notifications, PAL
// dispatch, scheduler preemption and context switch detection. The
// architectural PC must already hold the sequentially-next instruction
// address (or branch target) before the call.
func (c *Core) commitEpilogue(seq, pc uint64, in isa.Inst, ports isa.RegPorts, out *ExecOut, loadVal uint64, fi bool) commitRedirect {
	c.Insts++
	var red commitRedirect

	// Taint propagation sees every commit, before PAL dispatch mutates
	// syscall argument registers and regardless of the FI window (a
	// corrupted value keeps flowing after fi_activate_inst closes it).
	if c.Taint != nil {
		c.Taint.OnCommitInst(seq, pc, in, ports, out, loadVal, &c.Arch)
	}
	if c.Flight != nil {
		c.Flight.OnCommitInst(seq, pc, in, ports, out, loadVal, c.Ticks, &c.Arch)
	}

	if fi {
		if ports.SrcAUsed {
			c.FI.OnRegRead(ports.SrcAFP, ports.SrcA)
		}
		if ports.SrcBUsed {
			c.FI.OnRegRead(ports.SrcBFP, ports.SrcB)
		}
		if ports.DstUsed {
			c.FI.OnRegWrite(ports.DstFP, ports.Dst)
		}
	}

	// PAL instructions: FI control, checkpointing, kernel services.
	if in.Format == isa.FormatPAL && in.Kind != isa.KindNop {
		switch in.Kind {
		case isa.KindFIActivate:
			if c.FI != nil {
				c.FI.OnActivate(c.Arch.PCBB, int(int64(c.Arch.ReadReg(isa.RegA0))))
			}
		case isa.KindFIInit:
			if c.OnCheckpoint != nil {
				c.OnCheckpoint()
			}
		default:
			if c.Pal == nil {
				c.stop(&Trap{Kind: TrapIllegal, PC: c.Arch.PC, Word: in.Raw})
				red.stopped = true
				return red
			}
			pcbbBefore := c.Arch.PCBB
			action, err := c.Pal.HandlePal(c, in.Kind)
			if err != nil {
				c.stop(&Trap{Kind: TrapKernel, PC: c.Arch.PC, Word: in.Raw})
				red.stopped = true
				return red
			}
			if action == PalStop {
				c.Stopped = true
				red.stopped = true
				return red
			}
			if c.Arch.PCBB != pcbbBefore && c.FI != nil {
				c.FI.OnContextSwitch(c.Arch.PCBB)
			}
		}
		// All PAL instructions serialize the pipeline.
		red.redirect = true
		red.target = c.Arch.PC
	}

	// FI commit: count the instruction, apply register/PC/special faults.
	if c.FI != nil && c.FI.Enabled() {
		if c.FI.OnCommit(seq, pc, &c.Arch) {
			red.redirect = true
			red.target = c.Arch.PC
		}
	}

	// Preemptive scheduling: the kernel may switch threads here.
	if c.Sched != nil {
		pcbbBefore := c.Arch.PCBB
		if c.Sched.MaybeSwitch(c) {
			if c.Arch.PCBB != pcbbBefore && c.FI != nil {
				c.FI.OnContextSwitch(c.Arch.PCBB)
			}
			red.redirect = true
			red.target = c.Arch.PC
		}
		if c.Stopped {
			red.stopped = true
		}
	}
	return red
}
