// Package cpu implements the simulated processor models: a functional
// 1-IPC "atomic" model, a "timing" model that adds cache/memory latencies,
// and a 5-stage pipelined model with a tournament branch predictor and
// speculative fetch (the stand-in for gem5's O3 model — see DESIGN.md for
// the substitution argument). All models share the same architectural
// state and execution semantics, and expose the same fault-injection hook
// points, so GemFI-style faults can be injected in both functional and
// cycle-accurate simulations exactly as the paper describes.
package cpu

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// Arch is the architectural (software-visible) state of one core.
type Arch struct {
	R    [isa.NumRegs]uint64  // integer register file; R[31] pinned to zero
	F    [isa.NumRegs]float64 // floating point register file; F[31] pinned to 0.0
	PC   uint64               // address of the next instruction to execute
	PCBB uint64               // Process Control Block Base (special register)
}

// BitsEqual compares two architectural states bit for bit. A plain
// struct comparison treats a NaN float register as unequal to itself, so
// two machines in identical states would spuriously differ whenever the
// program computed a NaN; the FP register file must be compared as raw
// bits.
func (a *Arch) BitsEqual(b *Arch) bool {
	if a.PC != b.PC || a.PCBB != b.PCBB || a.R != b.R {
		return false
	}
	for i := range a.F {
		if math.Float64bits(a.F[i]) != math.Float64bits(b.F[i]) {
			return false
		}
	}
	return true
}

// ReadReg reads an integer register, honoring the zero register.
func (a *Arch) ReadReg(r isa.Reg) uint64 {
	if r == isa.ZeroReg {
		return 0
	}
	return a.R[r&31]
}

// WriteReg writes an integer register, discarding writes to the zero
// register.
func (a *Arch) WriteReg(r isa.Reg, v uint64) {
	if r != isa.ZeroReg {
		a.R[r&31] = v
	}
}

// ReadFReg reads a floating point register, honoring the zero register.
func (a *Arch) ReadFReg(r isa.Reg) float64 {
	if r == isa.ZeroReg {
		return 0
	}
	return a.F[r&31]
}

// WriteFReg writes a floating point register, discarding writes to the
// zero register.
func (a *Arch) WriteFReg(r isa.Reg, v float64) {
	if r != isa.ZeroReg {
		a.F[r&31] = v
	}
}

// TrapKind classifies the architectural traps a program can raise. Any
// trap terminates the run; the campaign layer classifies it as a crash.
type TrapKind int

// Trap kinds.
const (
	TrapNone TrapKind = iota
	TrapIllegal
	TrapMemFault
	TrapUnaligned
	TrapArith
	TrapFetchFault
	TrapKernel // kernel-detected fatal condition (e.g. corrupted PCB)
)

// String names the trap kind the way a Unix shell would.
func (k TrapKind) String() string {
	switch k {
	case TrapIllegal:
		return "illegal instruction"
	case TrapMemFault:
		return "segmentation fault"
	case TrapUnaligned:
		return "unaligned access"
	case TrapArith:
		return "arithmetic trap"
	case TrapFetchFault:
		return "instruction fetch fault"
	case TrapKernel:
		return "kernel panic"
	default:
		return "no trap"
	}
}

// Trap describes a fatal architectural event.
type Trap struct {
	Kind TrapKind
	PC   uint64
	Addr uint64 // faulting data address, if any
	Word isa.Word
}

// Error implements the error interface.
func (t *Trap) Error() string {
	return fmt.Sprintf("%v at pc=0x%x addr=0x%x", t.Kind, t.PC, t.Addr)
}

// ExecOut is the output of the execute stage for one instruction. The
// fault-injection execute hook corrupts exactly one of these fields
// depending on the instruction class (effective address for memory
// instructions, target for branches, result otherwise) — mirroring the
// paper's observation that execute-stage faults on memory instructions
// corrupt the virtual address being calculated.
type ExecOut struct {
	IntRes uint64  // integer result (also the link value for BR/BSR/JMP)
	FpRes  float64 // floating point result

	EA       uint64 // effective address for loads/stores
	StoreVal uint64 // raw bits to store (integer value or float64 bits)

	Taken  bool   // branch outcome
	Target uint64 // branch/jump target

	TrapKind TrapKind // TrapNone if the instruction executed cleanly
}

// Execute computes the pure (non-memory) semantics of one instruction.
// a and b are the integer operand values (b already substituted with the
// literal for literal-form instructions); fa and fb are the FP operands;
// pc is the instruction's own address.
func Execute(in isa.Inst, a, b uint64, fa, fb float64, pc uint64) ExecOut {
	var o ExecOut
	next := pc + 4
	switch in.Kind {
	case isa.KindLDA:
		o.IntRes = a + uint64(int64(in.Disp))
	case isa.KindLDAH:
		o.IntRes = a + uint64(int64(in.Disp))<<16
	case isa.KindLDBU, isa.KindLDQ, isa.KindLDT:
		o.EA = a + uint64(int64(in.Disp))
	case isa.KindSTB, isa.KindSTQ:
		o.EA = a + uint64(int64(in.Disp))
		o.StoreVal = b
	case isa.KindSTT:
		o.EA = a + uint64(int64(in.Disp))
		o.StoreVal = math.Float64bits(fb)
	case isa.KindJMP:
		o.Taken = true
		o.Target = a &^ 3
		o.IntRes = next
	case isa.KindBR, isa.KindBSR:
		o.Taken = true
		o.Target = next + uint64(int64(in.Disp))*4
		o.IntRes = next
	case isa.KindBEQ, isa.KindBNE, isa.KindBLT, isa.KindBLE, isa.KindBGE, isa.KindBGT:
		o.Target = next + uint64(int64(in.Disp))*4
		s := int64(a)
		switch in.Kind {
		case isa.KindBEQ:
			o.Taken = s == 0
		case isa.KindBNE:
			o.Taken = s != 0
		case isa.KindBLT:
			o.Taken = s < 0
		case isa.KindBLE:
			o.Taken = s <= 0
		case isa.KindBGE:
			o.Taken = s >= 0
		case isa.KindBGT:
			o.Taken = s > 0
		}
	case isa.KindFBEQ:
		o.Target = next + uint64(int64(in.Disp))*4
		o.Taken = fa == 0
	case isa.KindFBNE:
		o.Target = next + uint64(int64(in.Disp))*4
		o.Taken = fa != 0
	case isa.KindADDQ:
		o.IntRes = a + b
	case isa.KindSUBQ:
		o.IntRes = a - b
	case isa.KindCMPEQ:
		o.IntRes = boolBit(a == b)
	case isa.KindCMPLT:
		o.IntRes = boolBit(int64(a) < int64(b))
	case isa.KindCMPLE:
		o.IntRes = boolBit(int64(a) <= int64(b))
	case isa.KindCMPULT:
		o.IntRes = boolBit(a < b)
	case isa.KindCMPULE:
		o.IntRes = boolBit(a <= b)
	case isa.KindAND:
		o.IntRes = a & b
	case isa.KindBIC:
		o.IntRes = a &^ b
	case isa.KindBIS:
		o.IntRes = a | b
	case isa.KindORNOT:
		o.IntRes = a | ^b
	case isa.KindXOR:
		o.IntRes = a ^ b
	case isa.KindEQV:
		o.IntRes = a ^ ^b
	case isa.KindSLL:
		o.IntRes = a << (b & 63)
	case isa.KindSRL:
		o.IntRes = a >> (b & 63)
	case isa.KindSRA:
		o.IntRes = uint64(int64(a) >> (b & 63))
	case isa.KindMULQ:
		o.IntRes = a * b
	case isa.KindDIVQ:
		res, trap := divq(int64(a), int64(b), false)
		o.IntRes, o.TrapKind = res, trap
	case isa.KindREMQ:
		res, trap := divq(int64(a), int64(b), true)
		o.IntRes, o.TrapKind = res, trap
	case isa.KindADDT:
		o.FpRes = fa + fb
	case isa.KindSUBT:
		o.FpRes = fa - fb
	case isa.KindMULT:
		o.FpRes = fa * fb
	case isa.KindDIVT:
		o.FpRes = fa / fb // IEEE: +-Inf / NaN, no trap
	case isa.KindCMPTEQ:
		o.FpRes = boolFP(fa == fb)
	case isa.KindCMPTLT:
		o.FpRes = boolFP(fa < fb)
	case isa.KindCMPTLE:
		o.FpRes = boolFP(fa <= fb)
	case isa.KindSQRTT:
		o.FpRes = math.Sqrt(fb)
	case isa.KindCVTTQ:
		o.FpRes = math.Float64frombits(uint64(truncToInt64(fb)))
	case isa.KindCVTQT:
		o.FpRes = float64(int64(math.Float64bits(fb)))
	case isa.KindCPYS:
		o.FpRes = math.Copysign(fb, fa)
	case isa.KindHalt, isa.KindSyscall, isa.KindFIActivate, isa.KindFIInit, isa.KindNop:
		// PAL instructions execute at commit; nothing to compute here.
	default:
		o.TrapKind = TrapIllegal
	}
	return o
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func boolFP(b bool) float64 {
	if b {
		return 2.0 // Alpha's FP "true" encoding
	}
	return 0.0
}

// divq implements DIVQ/REMQ with hardware-like edge behavior: divide by
// zero raises an arithmetic trap; INT64_MIN / -1 wraps (no trap).
func divq(a, b int64, rem bool) (uint64, TrapKind) {
	if b == 0 {
		return 0, TrapArith
	}
	if a == math.MinInt64 && b == -1 {
		if rem {
			return 0, TrapNone
		}
		return uint64(a), TrapNone
	}
	if rem {
		return uint64(a % b), TrapNone
	}
	return uint64(a / b), TrapNone
}

// truncToInt64 converts a float to int64 with saturating, defined behavior
// for NaN and out-of-range values (Go's conversion is implementation
// defined there).
func truncToInt64(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt64:
		return math.MaxInt64
	case f <= math.MinInt64:
		return math.MinInt64
	default:
		return int64(f)
	}
}
