package cpu_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// runDisabled mirrors run but with every fast path bypassed, so the
// self-modifying tests can compare against the cold reference.
func runDisabled(t *testing.T, src, model string) *cpu.Core {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.New()
	core := &cpu.Core{Name: "system.cpu0", Mem: m, DisableFastPath: true}
	k := kernel.New(m)
	if err := k.Boot(core, p); err != nil {
		t.Fatalf("boot: %v", err)
	}
	var mdl cpu.Model
	switch model {
	case "atomic":
		mdl = cpu.NewAtomic(core)
	case "timing":
		core.Hier = mem.NewHierarchy(mem.DefaultHierarchyConfig())
		mdl = cpu.NewTiming(core)
	case "pipelined":
		core.Hier = mem.NewHierarchy(mem.DefaultHierarchyConfig())
		mdl = cpu.NewPipelined(core)
	default:
		t.Fatalf("unknown model %q", model)
	}
	for i := 0; i < 50_000_000 && mdl.Step(); i++ {
	}
	if !core.Stopped {
		t.Fatalf("%s: watchdog expired (insts=%d)", model, core.Insts)
	}
	return core
}

// TestSelfModifyingCodeInvalidatesPredecode warms the per-PC predecode
// cache by calling a subroutine, then overwrites that subroutine's text
// bytes with guest stores and calls it again. The second call must
// execute the new bytes: the store to the text region bumps the memory
// text generation, which invalidates every predecode entry. A stale hit
// would re-run the old body and exit 22 instead of 33.
func TestSelfModifyingCodeInvalidatesPredecode(t *testing.T) {
	src := `
_start:
    bsr  ra, patch      ; warm the predecode cache: t2 = 11
    mov  t2, s0
    la   t0, donor      ; copy donor's body over patch, byte by byte
    la   t1, patch
    li   t4, 8
copy:
    ldbu t3, 0(t0)
    stb  t3, 0(t1)
    addq t0, #1, t0
    addq t1, #1, t1
    subq t4, #1, t4
    bne  t4, copy
    bsr  ra, patch      ; must now execute the patched body: t2 = 22
    addq s0, t2, v0     ; 11 + 22
` + exitStub + `
patch:
    li   t2, 11
    ret
donor:
    li   t2, 22
    ret
`
	for _, m := range models {
		core, _ := run(t, src, m)
		if core.Trap != nil {
			t.Fatalf("%s: trap %v", m, core.Trap)
		}
		if core.ExitStatus != 33 {
			t.Errorf("%s: exit = %d, want 33 (stale predecode entry survived the text store?)",
				m, core.ExitStatus)
		}
	}
}

// TestSelfModifyingCodeWithFastPathDisabled pins the reference behavior:
// the same program must produce the same result with every cache
// bypassed, proving the test measures invalidation rather than an
// accident of the fast path.
func TestSelfModifyingCodeWithFastPathDisabled(t *testing.T) {
	src := `
_start:
    bsr  ra, patch
    mov  t2, s0
    la   t0, donor
    la   t1, patch
    li   t4, 8
copy:
    ldbu t3, 0(t0)
    stb  t3, 0(t1)
    addq t0, #1, t0
    addq t1, #1, t1
    subq t4, #1, t4
    bne  t4, copy
    bsr  ra, patch
    addq s0, t2, v0
` + exitStub + `
patch:
    li   t2, 11
    ret
donor:
    li   t2, 22
    ret
`
	for _, m := range models {
		core := runDisabled(t, src, m)
		if core.ExitStatus != 33 {
			t.Errorf("%s (slow path): exit = %d, want 33", m, core.ExitStatus)
		}
	}
}
