package cpu

// Tournament branch predictor, matching the paper's simulated
// configuration ("a single core ALPHA CPU coupled with a tournament branch
// predictor"). It combines a local-history predictor and a gshare global
// predictor through a chooser table, with a branch target buffer and a
// small return address stack.

const (
	localEntries   = 1024
	localHistBits  = 10
	globalEntries  = 4096
	chooserEntries = 4096
	btbEntries     = 512
	rasDepth       = 8
)

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	isRet  bool // memory-format jump with the RET hint: use the RAS
	isCall bool // BSR / JSR-hinted jump: push the RAS
	uncond bool // unconditional transfer: ignore the direction predictor
}

// Predictor is a tournament direction predictor with BTB and RAS.
type Predictor struct {
	// Disabled makes Predict always guess fall-through and Update a
	// no-op — the "no branch prediction" ablation baseline.
	Disabled bool

	localHist [localEntries]uint16
	localCtr  [1 << localHistBits]uint8
	globalCtr [globalEntries]uint8
	chooser   [chooserEntries]uint8
	ghist     uint64
	btb       [btbEntries]btbEntry
	ras       [rasDepth]uint64
	rasTop    int

	Lookups     uint64
	Mispredicts uint64
}

// NewPredictor returns a predictor with weakly-not-taken counters.
func NewPredictor() *Predictor {
	p := &Predictor{}
	for i := range p.localCtr {
		p.localCtr[i] = 1
	}
	for i := range p.globalCtr {
		p.globalCtr[i] = 1
	}
	for i := range p.chooser {
		p.chooser[i] = 2 // slight initial preference for the global side
	}
	return p
}

func (p *Predictor) localIndex(pc uint64) int { return int(pc>>2) & (localEntries - 1) }

func (p *Predictor) globalIndex(pc uint64) int {
	return int((pc>>2)^p.ghist) & (globalEntries - 1)
}

func (p *Predictor) chooseIndex(pc uint64) int { return int(p.ghist) & (chooserEntries - 1) }

func (p *Predictor) btbIndex(pc uint64) int { return int(pc>>2) & (btbEntries - 1) }

// Prediction is the front-end's guess for the instruction at PC.
type Prediction struct {
	Next    uint64 // predicted next fetch address
	Taken   bool
	BTBHit  bool
	UsedRAS bool
}

// Predict guesses the next fetch address for the instruction at pc. Only
// BTB hits can redirect the front end (an unseen branch predicts
// fall-through), as in a real fetch stage that cannot yet see the
// instruction bits.
func (p *Predictor) Predict(pc uint64) Prediction {
	p.Lookups++
	fallthrough_ := pc + 4
	if p.Disabled {
		return Prediction{Next: fallthrough_}
	}
	e := p.btb[p.btbIndex(pc)]
	if !e.valid || e.tag != pc {
		return Prediction{Next: fallthrough_}
	}
	if e.isRet {
		t := p.rasPop()
		if t != 0 {
			return Prediction{Next: t, Taken: true, BTBHit: true, UsedRAS: true}
		}
		return Prediction{Next: e.target, Taken: true, BTBHit: true}
	}
	taken := e.uncond || p.direction(pc)
	if e.isCall && taken {
		p.rasPush(fallthrough_)
	}
	if taken {
		return Prediction{Next: e.target, Taken: true, BTBHit: true}
	}
	return Prediction{Next: fallthrough_, BTBHit: true}
}

// direction runs the tournament: chooser >= 2 selects the global side.
func (p *Predictor) direction(pc uint64) bool {
	if p.chooser[p.chooseIndex(pc)] >= 2 {
		return p.globalCtr[p.globalIndex(pc)] >= 2
	}
	hist := p.localHist[p.localIndex(pc)] & ((1 << localHistBits) - 1)
	return p.localCtr[hist] >= 2
}

// BranchInfo describes a resolved control transfer for training.
type BranchInfo struct {
	PC     uint64
	Taken  bool
	Target uint64
	IsRet  bool
	IsCall bool
	Uncond bool
}

// Update trains the predictor with the resolved branch and reports
// whether the earlier prediction would have been correct is left to the
// pipeline (which compares fetch redirection); Update only adjusts state.
func (p *Predictor) Update(b BranchInfo) {
	if p.Disabled {
		return
	}
	// Tournament training: whichever side was right gets the chooser vote.
	localHist := p.localHist[p.localIndex(b.PC)] & ((1 << localHistBits) - 1)
	localPred := p.localCtr[localHist] >= 2
	globalPred := p.globalCtr[p.globalIndex(b.PC)] >= 2
	ci := p.chooseIndex(b.PC)
	if localPred != globalPred {
		if globalPred == b.Taken {
			p.chooser[ci] = satInc(p.chooser[ci])
		} else {
			p.chooser[ci] = satDec(p.chooser[ci])
		}
	}
	p.localCtr[localHist] = train(p.localCtr[localHist], b.Taken)
	p.globalCtr[p.globalIndex(b.PC)] = train(p.globalCtr[p.globalIndex(b.PC)], b.Taken)
	p.localHist[p.localIndex(b.PC)] = (p.localHist[p.localIndex(b.PC)] << 1) | boolU16(b.Taken)
	p.ghist = (p.ghist << 1) | uint64(boolU16(b.Taken))

	if b.Taken {
		p.btb[p.btbIndex(b.PC)] = btbEntry{
			valid: true, tag: b.PC, target: b.Target,
			isRet: b.IsRet, isCall: b.IsCall, uncond: b.Uncond,
		}
	}
}

// Reset clears all prediction state (used on checkpoint restore and model
// switches).
func (p *Predictor) Reset() {
	disabled := p.Disabled
	*p = *NewPredictor()
	p.Disabled = disabled
}

func (p *Predictor) rasPush(addr uint64) {
	p.ras[p.rasTop%rasDepth] = addr
	p.rasTop++
}

func (p *Predictor) rasPop() uint64 {
	if p.rasTop == 0 {
		return 0
	}
	p.rasTop--
	return p.ras[p.rasTop%rasDepth]
}

func train(ctr uint8, taken bool) uint8 {
	if taken {
		return satInc(ctr)
	}
	return satDec(ctr)
}

func satInc(c uint8) uint8 {
	if c < 3 {
		return c + 1
	}
	return c
}

func satDec(c uint8) uint8 {
	if c > 0 {
		return c - 1
	}
	return c
}

func boolU16(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}
