// Package gemfi is the public API of GemFI-Go, a from-scratch Go
// reproduction of "GemFI: A Fault Injection Tool for Studying the
// Behavior of Applications on Unreliable Substrates" (DSN 2014).
//
// The package re-exports the pieces a downstream user needs:
//
//   - building guest programs (assembler and mini-C compiler),
//   - running them on the simulated Alpha-like machine (three CPU
//     models: atomic, timing, pipelined),
//   - describing and injecting faults (the paper's Location / Thread /
//     Time / Behavior model, including the Listing-1 input file format),
//   - checkpoint-based campaign execution, locally parallel or
//     distributed over a network of workstations,
//   - the paper's six validation workloads and its outcome taxonomy.
//
// Quick start:
//
//	prog, _ := gemfi.CompileC(src)         // or gemfi.Assemble(asmSrc)
//	s := gemfi.NewSimulator(gemfi.SimConfig{Model: gemfi.ModelAtomic, EnableFI: true})
//	_ = s.Load(prog)
//	result := s.Run()
//
// See examples/ for complete programs.
package gemfi

import (
	"io"

	"repro/internal/asm"
	"repro/internal/campaign"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/now"
	"repro/internal/obs"
	"repro/internal/obs/httpserv"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/taint"
	"repro/internal/workloads"
)

// ---- guest toolchain ----

// Program is a loadable guest image.
type Program = asm.Program

// Assemble builds a program from Thessaly-64 assembly source.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// CompileC builds a program from mini-C source.
func CompileC(src string) (*Program, error) { return minic.Compile(src) }

// ---- simulator ----

// SimConfig configures a simulator; see sim.Config for field docs.
type SimConfig = sim.Config

// Simulator is a wired machine: CPU model + memory + kernel + FI engine.
type Simulator = sim.Simulator

// RunResult summarizes a completed simulation.
type RunResult = sim.RunResult

// ModelKind selects the CPU model.
type ModelKind = sim.ModelKind

// CPU models.
const (
	ModelAtomic    = sim.ModelAtomic
	ModelTiming    = sim.ModelTiming
	ModelPipelined = sim.ModelPipelined
)

// NewSimulator builds a simulator.
func NewSimulator(cfg SimConfig) *Simulator { return sim.New(cfg) }

// DefaultSimConfig is the paper's validation configuration.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// Checkpoint is a serializable whole-machine snapshot.
type Checkpoint = checkpoint.State

// LoadCheckpoint reads a checkpoint.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) { return checkpoint.Load(r) }

// ---- fault model ----

// Fault is one fault description (Location, Thread, Time, Behavior).
type Fault = core.Fault

// Location / behavior / time-base enums.
type (
	// FaultLocation is the targeted micro-architectural module.
	FaultLocation = core.Location
	// FaultBehavior is the corruption applied.
	FaultBehavior = core.Behavior
	// FaultTimeBase selects instruction- or tick-relative timing.
	FaultTimeBase = core.TimeBase
)

// Fault locations.
const (
	LocIntReg     = core.LocIntReg
	LocFloatReg   = core.LocFloatReg
	LocSpecialReg = core.LocSpecialReg
	LocFetch      = core.LocFetch
	LocDecode     = core.LocDecode
	LocExec       = core.LocExec
	LocMem        = core.LocMem
	LocPC         = core.LocPC
)

// Fault behaviors.
const (
	BehFlip    = core.BehFlip
	BehXor     = core.BehXor
	BehSet     = core.BehSet
	BehAllZero = core.BehAllZero
	BehAllOne  = core.BehAllOne
)

// Time bases.
const (
	TimeInst = core.TimeInst
	TimeTick = core.TimeTick
)

// ParseFaults reads a GemFI fault input file (the paper's Listing 1
// format).
func ParseFaults(r io.Reader) ([]Fault, error) { return core.ParseFaults(r) }

// ParseFault parses a single fault description line.
func ParseFault(line string) (Fault, error) { return core.ParseFault(line) }

// FaultOutcome is the engine-level lifecycle summary of one fault.
type FaultOutcome = core.FaultOutcome

// ---- campaigns ----

// Experiment is one fault-injection run specification.
type Experiment = campaign.Experiment

// ExperimentResult is a classified campaign result.
type ExperimentResult = campaign.Result

// Outcome is the paper's five-class taxonomy.
type Outcome = campaign.Outcome

// Outcome classes.
const (
	OutcomeCrashed         = campaign.OutcomeCrashed
	OutcomeNonPropagated   = campaign.OutcomeNonPropagated
	OutcomeStrictlyCorrect = campaign.OutcomeStrictlyCorrect
	OutcomeCorrect         = campaign.OutcomeCorrect
	OutcomeSDC             = campaign.OutcomeSDC
)

// CampaignRunner executes experiments against one workload.
type CampaignRunner = campaign.Runner

// CampaignPool runs experiments on parallel local workers.
type CampaignPool = campaign.Pool

// NewCampaignRunner prepares golden run + checkpoint for a workload.
func NewCampaignRunner(w *Workload, opts campaign.RunnerOptions) (*CampaignRunner, error) {
	return campaign.NewRunner(w, opts)
}

// NewCampaignPool builds n parallel campaign runners.
func NewCampaignPool(w *Workload, n int, opts campaign.RunnerOptions) (*CampaignPool, error) {
	return campaign.NewPool(w, n, opts)
}

// GenerateUniform samples single-bit-flip experiments uniformly over
// location, bit and time (the paper's validation methodology).
func GenerateUniform(n int, gc campaign.GenConfig) []Experiment {
	return campaign.GenerateUniform(n, gc)
}

// SampleSize is the Leveugle (DATE'09) statistical campaign sizing the
// paper uses (99% confidence, 1% margin -> 2501..2504 runs).
func SampleSize(populationN int64, confidence, margin, p float64) int64 {
	return stats.SampleSize(populationN, confidence, margin, p)
}

// ---- observability ----

// MetricsRegistry collects counters/gauges/histograms from the
// simulator, campaigns and NoW components; attach one via
// SimConfig.Metrics. A nil registry disables collection at near-zero
// cost.
type MetricsRegistry = obs.Registry

// Tracer records structured fault-lifecycle and simulation events;
// attach one via SimConfig.Tracer. Export with WriteChromeTrace (load
// in chrome://tracing or Perfetto) or stream JSONL with StreamJSONL.
type Tracer = obs.Tracer

// TraceEvent is one structured trace record.
type TraceEvent = obs.Event

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer builds an in-memory event tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// ValidateTraceJSONL checks a JSON-lines trace stream against the event
// schema and returns the number of valid events.
func ValidateTraceJSONL(r io.Reader) (int, error) { return obs.ValidateJSONL(r) }

// ValidateProm checks a Prometheus text exposition stream (such as a
// /metrics scrape) and returns the number of sample lines.
func ValidateProm(r io.Reader) (int, error) { return obs.ValidateProm(r) }

// SpanRecorder records hierarchical spans (campaign → experiment →
// phases) across the master, serv and NoW workers; attach one via
// Pool.Spans, serv.Config.Spans or now.MasterConfig.Spans. A nil
// recorder disables tracing at near-zero cost.
type SpanRecorder = obs.SpanRecorder

// Span is one timed operation within a trace; SpanContext carries the
// trace/span identity across process boundaries (the NoW wire).
type Span = obs.Span

// SpanContext identifies a span for cross-process parenting.
type SpanContext = obs.SpanContext

// SpanRecord is the immutable exported form of a completed span.
type SpanRecord = obs.SpanRecord

// NewSpanRecorder builds an empty span recorder.
func NewSpanRecorder() *SpanRecorder { return obs.NewSpanRecorder() }

// ValidateSpansJSONL checks a JSON-lines span stream (the
// -spans-jsonl output) against the span schema and returns the number
// of valid spans.
func ValidateSpansJSONL(r io.Reader) (int, error) { return obs.ValidateSpansJSONL(r) }

// Profiler is the exact per-PC guest profiler: retired instructions,
// cycles, cache misses, branch mispredicts and pipeline stall causes,
// symbolized against the program's function symbols. Attach one via
// SimConfig.Profiler (or set SimConfig.EnableProfiler and retrieve it
// with Simulator.Profiler). Nil disables profiling at zero hot-loop
// cost.
type Profiler = prof.Profiler

// Profile is an immutable profiler snapshot; render it with WriteTop,
// WriteJSON or WriteFolded (flamegraph collapsed format).
type Profile = prof.Profile

// NewProfilerFor builds a profiler sized and symbolized for a program.
func NewProfilerFor(p *Program) *Profiler { return prof.ForProgram(p) }

// MergeProfiles merges worker profiles into one campaign-wide profile.
func MergeProfiles(ps ...*Profile) *Profile { return prof.MergeProfiles(ps...) }

// Symbol is one named guest address range.
type Symbol = asm.Symbol

// SymbolTable maps PCs back to guest function symbols.
type SymbolTable = asm.SymbolTable

// ObsServer is the live observability HTTP server: /metrics (Prometheus
// exposition), /status (campaign JSON), /profile and /debug/pprof.
type ObsServer = httpserv.Server

// ObsServerConfig wires the server's data sources.
type ObsServerConfig = httpserv.Config

// NewObsServer starts an observability server on addr.
func NewObsServer(addr string, cfg ObsServerConfig) (*ObsServer, error) {
	return httpserv.New(addr, cfg)
}

// AttributeOutcomesByPC buckets campaign results by the PC the fault
// struck, symbolized against syms — the per-instruction vulnerability
// report.
func AttributeOutcomesByPC(results []ExperimentResult, syms SymbolTable) (rows []campaign.PCOutcome, unattributed int) {
	return campaign.AttributeByPC(results, syms)
}

// ---- fault-propagation taint tracing ----

// TaintTracker follows injected corruption bit-by-bit through registers,
// memory, control flow and I/O on every CPU model; attach one via
// SimConfig.Taint (or set SimConfig.EnableTaint). Nil disables tracking
// at near-zero hot-loop cost.
type TaintTracker = taint.Tracker

// PropReport explains where one experiment's corruption went: the
// propagation DAG, taint-width counters and the terminal verdict.
type PropReport = taint.PropReport

// PropSummary is the compact verdict record joined onto
// ExperimentResult.Prop.
type PropSummary = taint.Summary

// TaintVerdict is the terminal explanation of an experiment
// (masked-overwritten, masked-logically, reached-output, ...).
type TaintVerdict = taint.Verdict

// Taint verdicts.
const (
	VerdictNotInjected       = taint.VerdictNotInjected
	VerdictMaskedOverwritten = taint.VerdictMaskedOverwritten
	VerdictMaskedLogically   = taint.VerdictMaskedLogically
	VerdictReachedOutput     = taint.VerdictReachedOutput
	VerdictReachedCrash      = taint.VerdictReachedCrash
	VerdictReachedState      = taint.VerdictReachedState
)

// NewTaintTracker builds a fault-propagation tracker.
func NewTaintTracker() *TaintTracker { return taint.New() }

// ValidateTaintReport checks a propagation-report JSON document against
// the schema and returns the parsed report.
func ValidateTaintReport(r io.Reader) (*PropReport, error) { return taint.ValidateReportJSON(r) }

// ---- workloads ----

// Workload is a guest benchmark with output extraction and grading.
type Workload = workloads.Workload

// WorkloadScale selects problem sizes.
type WorkloadScale = workloads.Scale

// Workload scales.
const (
	ScaleTest  = workloads.ScaleTest
	ScaleSmall = workloads.ScaleSmall
	ScalePaper = workloads.ScalePaper
)

// Workloads returns the paper's six benchmarks at a scale.
func Workloads(scale WorkloadScale) []*Workload { return workloads.All(scale) }

// WorkloadByName returns one benchmark by name
// (dct, jacobi, pi, knapsack, deblock, canneal).
func WorkloadByName(name string, scale WorkloadScale) (*Workload, error) {
	return workloads.ByName(name, scale)
}

// ---- network of workstations ----

// NoWMaster serves a campaign to TCP workers.
type NoWMaster = now.Master

// NoWWorker pulls and executes experiments from a master.
type NoWWorker = now.Worker

// NewNoWMaster prepares a distributed campaign (golden run + checkpoint)
// and listens on addr.
func NewNoWMaster(addr string, cfg now.MasterConfig) (*NoWMaster, error) {
	return now.NewMaster(addr, cfg)
}

// NewNoWWorker builds a workstation worker.
func NewNoWWorker(cfg now.WorkerConfig) *NoWWorker { return now.NewWorker(cfg) }
