package gemfi

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/workloads"
)

// spanRunner builds a checkpoint-backed pi runner, optionally traced —
// the per-experiment configuration the span disabled-overhead bound is
// defined against.
func spanRunner(b *testing.B, rec *obs.SpanRecorder) (*campaign.Runner, []campaign.Experiment) {
	b.Helper()
	r, err := campaign.NewRunner(workloads.MonteCarloPI(workloads.ScaleTest), campaign.RunnerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if rec != nil {
		r.AttachSpans(rec, "bench")
	}
	exps := campaign.GenerateUniform(4, campaign.GenConfig{WindowInsts: r.WindowInsts, Seed: 17})
	return r, exps
}

func runSpanCase(b *testing.B, makeRec func() *obs.SpanRecorder) {
	b.ReportAllocs()
	b.StopTimer()
	r, exps := spanRunner(b, makeRec())
	b.StartTimer()
	for i := 0; i < b.N; i++ {
		r.Run(exps[i%len(exps)])
	}
}

// BenchmarkSpansDisabled compares per-experiment execution with span
// tracing absent (nil recorder — the disabled path every campaign
// without -spans takes) against a recorder attached. The nil path costs
// a handful of nil-receiver checks per experiment, not per instruction.
func BenchmarkSpansDisabled(b *testing.B) {
	b.Run("Baseline", func(b *testing.B) {
		runSpanCase(b, func() *obs.SpanRecorder { return nil })
	})
	b.Run("SpansOff", func(b *testing.B) {
		// Same as Baseline — the explicit-nil spelling of "disabled".
		runSpanCase(b, func() *obs.SpanRecorder { return nil })
	})
	b.Run("SpansOn", func(b *testing.B) {
		runSpanCase(b, obs.NewSpanRecorder)
	})
}

// TestSpansDisabledOverhead asserts the acceptance bound: with no span
// recorder attached, experiment execution must not regress measurably
// against the pre-span baseline — the instrumentation is nil-receiver
// guards plus one pointer test per phase cut, nothing per instruction.
// The generous 1.5x threshold catches a structural regression (e.g. an
// unconditional per-instruction hook), not scheduler noise.
func TestSpansDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison in -short mode")
	}
	measure := func(makeRec func() *obs.SpanRecorder) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			runSpanCase(b, makeRec)
		})
		return float64(res.NsPerOp())
	}
	baseline := measure(func() *obs.SpanRecorder { return nil })
	disabled := measure(func() *obs.SpanRecorder { return nil })
	enabled := measure(obs.NewSpanRecorder)
	t.Logf("baseline %.0f ns/op, spans-disabled %.0f ns/op, spans-enabled %.0f ns/op",
		baseline, disabled, enabled)
	if disabled > baseline*1.5 {
		t.Errorf("spans-disabled run %.0f ns/op vs baseline %.0f ns/op: disabled path is not free",
			disabled, baseline)
	}
	// Enabled tracing must also stay cheap per experiment: a dozen span
	// allocations against millions of simulated instructions.
	if enabled > baseline*2.0 {
		t.Errorf("spans-enabled run %.0f ns/op vs baseline %.0f ns/op: tracing leaked into the hot loop",
			enabled, baseline)
	}
}
