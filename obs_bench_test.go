package gemfi

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/workloads"
)

// obsSim builds a pi simulator on the atomic model, optionally with
// observability attached — the commit-loop configuration the disabled-
// overhead acceptance bound is defined against.
func obsSim(b *testing.B, reg *obs.Registry, tr *obs.Tracer) *Simulator {
	b.Helper()
	w := workloads.MonteCarloPI(workloads.ScaleTest)
	p, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	s := NewSimulator(SimConfig{
		Model: ModelAtomic, EnableFI: true, MaxInsts: 2_000_000_000,
		Metrics: reg, Tracer: tr,
	})
	if err := s.Load(p); err != nil {
		b.Fatal(err)
	}
	return s
}

func runObsCase(b *testing.B, makeReg func() *obs.Registry, makeTr func() *obs.Tracer) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := obsSim(b, makeReg(), makeTr())
		b.StartTimer()
		if r := s.Run(); r.Failed() {
			b.Fatalf("%+v", r)
		}
	}
}

// BenchmarkObsDisabled compares the atomic-model commit loop with
// observability absent (the baseline every earlier PR measured), with
// nil Metrics/Tracer fields explicitly passed (the disabled path), and
// with both attached. The first two must be within noise of each other:
// metrics are pull-collectors that never touch the hot loop, and the
// tracer only emits on fault-lifecycle edges.
func BenchmarkObsDisabled(b *testing.B) {
	b.Run("Baseline", func(b *testing.B) {
		runObsCase(b, func() *obs.Registry { return nil }, func() *obs.Tracer { return nil })
	})
	b.Run("ObsOff", func(b *testing.B) {
		// Same as Baseline — the explicit-nil spelling of "disabled".
		runObsCase(b, func() *obs.Registry { return nil }, func() *obs.Tracer { return nil })
	})
	b.Run("ObsOn", func(b *testing.B) {
		runObsCase(b, obs.NewRegistry, obs.NewTracer)
	})
}

// TestObsDisabledOverhead asserts the acceptance bound: with Metrics and
// Tracer nil, the atomic-model commit loop must not regress measurably
// against the pre-obs baseline. Both configurations compile to the same
// code (nil fields, branch-not-taken guards), so the two measurements
// sample the same loop; the generous 1.5x threshold only catches a
// structural regression (e.g. an unconditional per-instruction hook),
// not scheduler noise.
func TestObsDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison in -short mode")
	}
	measure := func(reg func() *obs.Registry, tr func() *obs.Tracer) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			runObsCase(b, reg, tr)
		})
		return float64(res.NsPerOp())
	}
	baseline := measure(func() *obs.Registry { return nil }, func() *obs.Tracer { return nil })
	disabled := measure(func() *obs.Registry { return nil }, func() *obs.Tracer { return nil })
	enabled := measure(obs.NewRegistry, obs.NewTracer)
	t.Logf("baseline %.0f ns/op, obs-disabled %.0f ns/op, obs-enabled %.0f ns/op",
		baseline, disabled, enabled)
	if disabled > baseline*1.5 {
		t.Errorf("obs-disabled run %.0f ns/op vs baseline %.0f ns/op: disabled path is not free",
			disabled, baseline)
	}
	// Enabled obs must also stay cheap on the commit loop — collectors
	// are pull-based, so even attached instrumentation costs ~nothing
	// until dump time.
	if enabled > baseline*2.0 {
		t.Errorf("obs-enabled run %.0f ns/op vs baseline %.0f ns/op: instrumentation leaked into the hot loop",
			enabled, baseline)
	}
}
