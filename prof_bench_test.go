package gemfi

import (
	"testing"

	"repro/internal/prof"
	"repro/internal/workloads"
)

// profSim builds a pi simulator on the atomic model, optionally with
// the guest profiler attached — the commit-loop configuration the
// profiler's disabled-overhead acceptance bound is defined against.
func profSim(b *testing.B, pr *prof.Profiler, enable bool) *Simulator {
	b.Helper()
	w := workloads.MonteCarloPI(workloads.ScaleTest)
	p, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	s := NewSimulator(SimConfig{
		Model: ModelAtomic, EnableFI: true, MaxInsts: 2_000_000_000,
		Profiler: pr, EnableProfiler: enable,
	})
	if err := s.Load(p); err != nil {
		b.Fatal(err)
	}
	return s
}

func runProfCase(b *testing.B, enable bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := profSim(b, nil, enable)
		b.StartTimer()
		if r := s.Run(); r.Failed() {
			b.Fatalf("%+v", r)
		}
	}
}

// BenchmarkProfiler compares the atomic-model commit loop with the
// profiler absent (Core.Prof nil — one branch-not-taken per commit)
// and attached (per-PC atomic adds + shadow call stack).
func BenchmarkProfiler(b *testing.B) {
	b.Run("Off", func(b *testing.B) { runProfCase(b, false) })
	b.Run("On", func(b *testing.B) { runProfCase(b, true) })
}

// TestProfilerDisabledOverhead asserts the acceptance bound: a nil
// profiler must not measurably slow the commit loop (same 1.5x
// structural-regression threshold as TestObsDisabledOverhead), and the
// attached profiler must stay within 2.5x — it does real per-commit
// work (dense-array atomic adds), but nothing super-linear.
func TestProfilerDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison in -short mode")
	}
	measure := func(enable bool) float64 {
		res := testing.Benchmark(func(b *testing.B) { runProfCase(b, enable) })
		return float64(res.NsPerOp())
	}
	baseline := measure(false)
	disabled := measure(false)
	enabled := measure(true)
	t.Logf("baseline %.0f ns/op, prof-disabled %.0f ns/op, prof-enabled %.0f ns/op",
		baseline, disabled, enabled)
	if disabled > baseline*1.5 {
		t.Errorf("prof-disabled run %.0f ns/op vs baseline %.0f ns/op: disabled path is not free",
			disabled, baseline)
	}
	if enabled > baseline*2.5 {
		t.Errorf("prof-enabled run %.0f ns/op vs baseline %.0f ns/op: profiler cost is super-linear",
			enabled, baseline)
	}
}
