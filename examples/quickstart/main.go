// Quickstart: compile a small mini-C program, run it clean, then inject
// a single bit-flip into a live register (the paper's Listing-1 fault)
// and observe how the result and the fault lifecycle change.
package main

import (
	"fmt"
	"log"

	gemfi "repro"
)

const guest = `
// Sum an array between the GemFI activation markers (paper Listing 2).
int data[64];
int result[1];

int main() {
    for (int i = 0; i < 64; i = i + 1) { data[i] = i * 3 + 1; }
    fi_checkpoint();          // fi_read_init_all()
    fi_activate(0);           // fi_activate_inst(id=0)
    int s = 0;
    for (int i = 0; i < 64; i = i + 1) { s = s + data[i]; }
    result[0] = s;
    fi_activate(0);           // toggle fault injection off
    return 0;
}
`

func main() {
	prog, err := gemfi.CompileC(guest)
	if err != nil {
		log.Fatal(err)
	}

	// Clean run.
	clean := runOnce(prog, nil)
	fmt.Printf("clean run:   exit=%d result=%d\n", clean.exit, clean.result)

	// Two faults in the paper's Listing-1 input format: a register fault
	// (often masked, because the compiler keeps values in memory) and a
	// load-value fault (propagates straight into the checksum).
	for _, line := range []string{
		"RegisterInjectedFault Inst:100 Flip:12 Threadid:0 system.cpu0 occ:1 int 1",
		"MemoryInjectedFault Inst:10 Flip:12 Threadid:0 system.cpu0 occ:1",
	} {
		fault, err := gemfi.ParseFault(line)
		if err != nil {
			log.Fatal(err)
		}
		faulty := runOnce(prog, []gemfi.Fault{fault})
		fmt.Printf("\nfault: %s\n", line)
		fmt.Printf("faulty run:  exit=%d result=%d\n", faulty.exit, faulty.result)
		for _, oc := range faulty.outcomes {
			fmt.Printf("lifecycle: fired=%v propagated=%v overwritten=%v detail=%q\n",
				oc.Fired, oc.Propagated, oc.Overwritten, oc.Detail)
		}
		if clean.result != faulty.result {
			fmt.Println("=> the bit flip propagated into the checksum")
		} else {
			fmt.Println("=> the bit flip was masked (non-propagated or overwritten)")
		}
	}
}

type runInfo struct {
	exit     int
	result   uint64
	outcomes []gemfi.FaultOutcome
}

func runOnce(prog *gemfi.Program, faults []gemfi.Fault) runInfo {
	s := gemfi.NewSimulator(gemfi.SimConfig{
		Model:    gemfi.ModelAtomic,
		EnableFI: true,
		Faults:   faults,
		MaxInsts: 10_000_000,
	})
	if err := s.Load(prog); err != nil {
		log.Fatal(err)
	}
	r := s.Run()
	if r.Crashed || r.Hung {
		log.Fatalf("run failed: %+v", r)
	}
	v, err := s.ReadMem64(prog.MustSymbol("result"))
	if err != nil {
		log.Fatal(err)
	}
	return runInfo{exit: r.ExitStatus, result: v, outcomes: r.Outcomes}
}
