// now-cluster demonstrates GemFI's network-of-workstations campaign
// execution (Section III.E of the paper) entirely in one process: a TCP
// master holding the checkpoint and experiment queue, and three "worker
// workstations" with two slots each, connected over loopback.
package main

import (
	"fmt"
	"log"
	"sync"

	gemfi "repro"
	"repro/internal/campaign"
	"repro/internal/now"
)

func main() {
	// Probe master discovers the fault-injection window for experiment
	// generation (it runs the golden simulation once).
	probe, err := gemfi.NewNoWMaster("127.0.0.1:0", now.MasterConfig{
		Workload: "jacobi", Scale: gemfi.ScaleTest, Quiet: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	window := probe.WindowInsts()
	probe.Close()

	exps := gemfi.GenerateUniform(60, campaign.GenConfig{WindowInsts: window, Seed: 99})
	master, err := gemfi.NewNoWMaster("127.0.0.1:0", now.MasterConfig{
		Workload: "jacobi", Scale: gemfi.ScaleTest, Experiments: exps, Quiet: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("master listening on %s with %d experiments\n", master.Addr(), len(exps))

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := gemfi.NewNoWWorker(now.WorkerConfig{
				Addr:  master.Addr(),
				Slots: 2,
				Name:  fmt.Sprintf("workstation%d", i),
			})
			n, err := w.Run()
			if err != nil {
				log.Printf("workstation%d: %v", i, err)
			}
			fmt.Printf("workstation%d completed %d experiments\n", i, n)
		}(i)
	}

	results := master.Wait()
	wg.Wait()

	tally := campaign.TallyOf(results)
	fmt.Printf("\ncampaign outcome distribution (%d experiments):\n", tally.Total())
	for _, o := range campaign.Outcomes() {
		fmt.Printf("  %-18s %4d (%5.1f%%)\n", o, tally[o], 100*tally.Fraction(o))
	}
}
