// timing-sweep reproduces the paper's Fig. 6 in miniature: the
// correlation between WHEN a fault is injected (normalized to the
// application's execution window) and the outcome, for the three
// workloads with interesting trends — PI (uncorrelated), Knapsack (later
// is safer: the GA's fitness function discards corrupted individuals)
// and Jacobi (later faults trade strictly-correct for correct).
package main

import (
	"fmt"
	"log"
	"runtime"
	"strings"

	gemfi "repro"
	"repro/internal/campaign"
)

func main() {
	for _, name := range []string{"pi", "knapsack", "jacobi"} {
		w, err := gemfi.WorkloadByName(name, gemfi.ScaleTest)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := campaign.RunFig6(campaign.Fig6Config{
			Workload:    w,
			Experiments: 150,
			Bins:        5,
			Parallelism: runtime.NumCPU(),
			Seed:        42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep.String())
		fmt.Println(sparkline(rep))
		fmt.Println()
	}
}

// sparkline renders acceptable-fraction per bin as a rough text chart.
func sparkline(rep *campaign.Fig6Report) string {
	var sb strings.Builder
	sb.WriteString("acceptable by time: ")
	blocks := []rune(" ▁▂▃▄▅▆▇█")
	for _, b := range rep.Bins {
		idx := int(b.Acceptable * float64(len(blocks)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}
