// dct-campaign runs a miniature Fig.5-style fault injection campaign on
// the DCT benchmark: uniform bit-flip faults per micro-architectural
// location, classified into the paper's five outcome classes.
package main

import (
	"fmt"
	"log"
	"runtime"

	gemfi "repro"
	"repro/internal/campaign"
	"repro/internal/core"
)

func main() {
	w, err := gemfi.WorkloadByName("dct", gemfi.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := gemfi.NewCampaignPool(w, runtime.NumCPU(), campaign.RunnerOptions{})
	if err != nil {
		log.Fatal(err)
	}

	const perLocation = 25
	fmt.Printf("DCT campaign: %d experiments per location, window = %d instructions\n\n",
		perLocation, pool.Runner().WindowInsts)
	fmt.Printf("%-16s", "location")
	for _, o := range campaign.Outcomes() {
		fmt.Printf(" %16s", o)
	}
	fmt.Println()

	for _, loc := range campaign.AllLocations() {
		exps := gemfi.GenerateUniform(perLocation, campaign.GenConfig{
			Locations:   []core.Location{loc},
			WindowInsts: pool.Runner().WindowInsts,
			Seed:        int64(loc) * 7,
		})
		results := pool.RunAll(exps)
		tally := campaign.TallyOf(results)
		fmt.Printf("%-16s", loc)
		for _, o := range campaign.Outcomes() {
			fmt.Printf(" %15.0f%%", 100*tally.Fraction(o))
		}
		fmt.Println()
	}
	fmt.Println("\nExpected shape (paper Fig. 5): FP-register faults benign for")
	fmt.Println("integer-light code, integer-register and PC faults crash-heavy,")
	fmt.Println("load/store-value faults mostly correct.")
}
