// vdd-sweep implements the study the paper closes with (Section VII):
// associate the supply voltage with the fault rate and find "the limits
// of aggressively reducing power consumption at the expense of
// correctness, yet within the error tolerance of applications".
//
// Each voltage step runs a campaign whose experiments carry a
// Poisson-distributed number of transient bit flips (rate grows
// exponentially as Vdd drops). The output is the energy-vs-quality cliff
// per application.
package main

import (
	"fmt"
	"log"
	"runtime"

	gemfi "repro"
	"repro/internal/campaign"
)

func main() {
	voltages := []float64{1.0, 0.9, 0.85, 0.8, 0.75, 0.7}
	for _, name := range []string{"pi", "jacobi"} {
		w, err := gemfi.WorkloadByName(name, gemfi.ScaleTest)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := campaign.RunVddSweep(campaign.VddConfig{
			Workload:    w,
			Voltages:    voltages,
			PerVoltage:  25,
			Parallelism: runtime.NumCPU(),
			Seed:        7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep.String())

		// Report the lowest voltage that keeps >= 90% acceptable runs —
		// the operating point an approximate-computing deployment would
		// choose for this application.
		best := voltages[0]
		for _, p := range rep.Points {
			if p.Acceptable >= 0.9 && p.Vdd < best {
				best = p.Vdd
			}
		}
		fmt.Printf("=> %s tolerates undervolting to %.2f V at >=90%% acceptable results\n\n", name, best)
	}
}
